#include "core/lnr_cell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "geometry/loc_key.h"
#include "geometry/predicates.h"

#include "util/check.h"

namespace lbsagg {

namespace {

LocKey MakeKey(const Vec2& p, double grid) { return MakeLocKey(p, grid); }

// Index of `id` in a ranked result; a large sentinel when absent.
int RankIndex(const std::vector<int>& ids, int id) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return static_cast<int>(i);
  }
  return std::numeric_limits<int>::max();
}

// Quantized canonical key of a line, used to deduplicate coverage-limit
// "chord" edges that carry no neighbor identity.
struct LineKey {
  int64_t angle, offset;
  bool operator==(const LineKey&) const = default;
};
struct LineKeyHash {
  size_t operator()(const LineKey& k) const {
    // Same full-avalanche combine as LocKeyHash: angle/offset pairs from a
    // line arrangement are highly structured, and `a * C ^ b` folds those
    // patterns onto each other.
    return LocKeyHash()(LocKey{k.angle, k.offset});
  }
};
LineKey MakeLineKey(const Line& line, double grid) {
  const double norm = Norm(line.normal);
  return {static_cast<int64_t>(std::llround(line.Angle() / 1e-7)),
          static_cast<int64_t>(std::llround(line.offset / norm / grid))};
}

// Identifies the bounding-box side of a box-edge line (0..3) for
// deduplication; -1 for non-axis lines.
int BoxSideIndex(const Line& line, const Box& box) {
  const double nx = line.normal.x, ny = line.normal.y;
  const double tol = 1e-9 * (std::abs(nx) + std::abs(ny));
  if (std::abs(ny) <= tol) {
    const double x = line.offset / nx;
    if (std::abs(x - box.lo.x) < 1e-6 * box.width()) return 0;
    if (std::abs(x - box.hi.x) < 1e-6 * box.width()) return 1;
  } else if (std::abs(nx) <= tol) {
    const double y = line.offset / ny;
    if (std::abs(y - box.lo.y) < 1e-6 * box.height()) return 2;
    if (std::abs(y - box.hi.y) < 1e-6 * box.height()) return 3;
  }
  return -1;
}

// Detects the coverage circle (§5.3): the chord flip points all lie on the
// circle of known radius d_max around the (unknown) tuple. Three spread
// points give the center; every point must agree with the radius within
// tolerance. Returns the center, or nullopt.
std::optional<Vec2> DetectCoverageDisc(const std::vector<Vec2>& points,
                                       double dmax) {
  if (points.size() < 3 || !std::isfinite(dmax)) return std::nullopt;
  // Spread triple: first point, farthest from it, then the point farthest
  // from the line through those two.
  size_t i1 = 0;
  double best = 0.0;
  for (size_t j = 1; j < points.size(); ++j) {
    const double d = SquaredDistance(points[0], points[j]);
    if (d > best) {
      best = d;
      i1 = j;
    }
  }
  if (best < 1e-12) return std::nullopt;
  const Line base = Line::Through(points[0], points[i1]);
  size_t i2 = 0;
  best = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    const double d = base.DistanceTo(points[j]);
    if (d > best) {
      best = d;
      i2 = j;
    }
  }
  if (best < 1e-6 * dmax) return std::nullopt;  // nearly collinear
  const Vec2 center = Circumcenter(points[0], points[i1], points[i2]);
  for (const Vec2& p : points) {
    if (std::abs(Distance(center, p) - dmax) > 1e-2 * dmax) {
      return std::nullopt;
    }
  }
  return center;
}

}  // namespace

LnrCellComputer::LnrCellComputer(LnrClient* client, LnrCellOptions options)
    : client_(client),
      options_(options),
      cells_counter_(
          obs::GetCounter(options.registry, "estimator.lnr_cell.cells")),
      edges_counter_(
          obs::GetCounter(options.registry, "estimator.lnr_cell.edges")),
      queries_counter_(
          obs::GetCounter(options.registry, "estimator.lnr_cell.queries")) {
  LBSAGG_CHECK(client_ != nullptr);
  // One observability pointer instruments the whole stack: flow the cell
  // registry into the binary searches unless pinned there explicitly.
  if (options_.search.registry == nullptr) {
    options_.search.registry = options_.registry;
  }
}

std::optional<LnrCellResult> LnrCellComputer::ComputeTop1Cell(int id,
                                                              const Vec2& q0) {
  const uint64_t start_queries = client_->queries_used();
  const Box& box = client_->region();
  const double grid =
      std::max({1.0, std::abs(box.hi.x), std::abs(box.hi.y)}) * 1e-9;

  LnrEdgeFinder finder(client_, options_.search, CellMembership::kTop1);

  const std::vector<int> ids0 = client_->Query(q0);
  if (ids0.empty() || ids0.front() != id) return std::nullopt;

  LnrCellResult result;
  std::unordered_set<int> known_neighbors;
  std::unordered_set<int> known_box_sides;
  std::unordered_set<LineKey, LineKeyHash> chord_keys;

  // Coverage-circle state (§5.3): chord flip points accumulate until three
  // of them pin down the d_max disc around the (unknown) tuple, after which
  // the disc polygon becomes the clip domain and chords are retired — a
  // circle cannot be tiled by ε-certified chords one vertex at a time.
  std::vector<Vec2> circle_points;
  bool has_disc = false;
  Vec2 disc_center;
  ConvexPolygon domain = ConvexPolygon::FromBox(box);

  auto try_form_disc = [&]() {
    if (has_disc) return false;
    const std::optional<Vec2> center =
        DetectCoverageDisc(circle_points, client_->max_radius());
    if (!center.has_value()) return false;
    has_disc = true;
    disc_center = *center;
    const ConvexPolygon disc =
        InscribedCirclePolygon(disc_center, client_->max_radius());
    for (size_t i = 0; i < disc.size() && !domain.IsEmpty(); ++i) {
      const Vec2& a = disc.vertices()[i];
      const Vec2& b = disc.vertices()[(i + 1) % disc.size()];
      domain = domain.Clip(HalfPlane(Line::Through(b, a)));
    }
    // Retire the chord approximations — the disc replaces them.
    std::erase_if(result.edges, [](const LnrEdgeInfo& e) {
      return !e.is_box_edge && e.neighbor_id < 0;
    });
    return true;
  };

  auto add_edge = [&](const EdgeEstimate& e) {
    if (e.is_box_edge) {
      const int side = BoxSideIndex(e.edge, box);
      if (side < 0 || !known_box_sides.insert(side).second) return false;
    } else if (e.neighbor_id < 0) {
      if (has_disc) return false;  // circle known: chords obsolete
      // Coverage-limit chord (§5.3). Deduplicate by the line itself and
      // remember the crossing point — it lies on the d_max circle.
      circle_points.push_back(Midpoint(e.near_witness, e.far_witness));
      if (try_form_disc()) return true;
      if (!chord_keys.insert(MakeLineKey(e.edge, grid * 1e6)).second) {
        return false;
      }
    } else {
      if (!known_neighbors.insert(e.neighbor_id).second) return false;
    }
    result.edges.push_back({e.edge, e.neighbor_id, e.is_box_edge,
                            e.near_witness, e.far_witness});
    return true;
  };

  // Coverage-limit chords found by Algorithm 7 carry no neighbor and fall
  // back to a perpendicular line whose orientation can cut into the d_max
  // disc; refine them with the certified local-tangent search.
  auto top1_member = [&](const std::vector<int>& ids) {
    return !ids.empty() && ids.front() == id;
  };
  const double chord_baseline = 0.01 * Distance(box.lo, box.hi);
  auto refine_chord = [&](EdgeEstimate& e) {
    if (e.is_box_edge || e.neighbor_id >= 0) return;
    if (std::optional<Line> line = finder.FindBoundaryLine(
            top1_member, q0, e.far_witness, chord_baseline)) {
      e.edge = *line;
      if (e.edge.Side(q0) > 0) e.edge = Line(-e.edge.normal, -e.edge.offset);
    }
  };

  // Algorithm 6 line 3-5: four axis-aligned rays bound an initial polygon.
  const Vec2 dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (const Vec2& d : dirs) {
    if (std::optional<EdgeEstimate> e = finder.FindEdgeOnRay(id, q0, q0 + d)) {
      refine_chord(*e);
      add_edge(*e);
    }
  }

  auto rebuild = [&]() {
    ConvexPolygon poly = domain;
    for (const LnrEdgeInfo& e : result.edges) {
      if (e.is_box_edge) continue;
      poly = poly.Clip(HalfPlane(e.line));
      if (poly.IsEmpty()) break;
    }
    return poly;
  };

  std::unordered_set<LocKey, LocKeyHash> processed;
  ConvexPolygon poly = rebuild();
  result.converged = false;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (poly.IsEmpty()) break;  // ε pathology: edges crossed over q0
    const Vec2* next_vertex = nullptr;
    for (const Vec2& v : poly.vertices()) {
      if (!processed.count(MakeKey(v, grid))) {
        next_vertex = &v;
        break;
      }
    }
    if (next_vertex == nullptr) {
      result.converged = true;
      break;
    }
    const Vec2 v = *next_vertex;
    processed.insert(MakeKey(v, grid));
    if (Distance(v, q0) <= finder.delta()) continue;

    const std::vector<int> ids = client_->Query(v);
    const int top = ids.empty() ? -1 : ids.front();
    if (top != id && top != -1 && known_neighbors.count(top) > 0) {
      continue;  // vertex passes: its winner's bisector is already known
    }
    if (has_disc) {
      if (top == -1) continue;  // beyond coverage: the disc handles it
      if (top == id &&
          Distance(v, disc_center) >=
              client_->max_radius() * (1.0 - 2e-3)) {
        continue;  // the cell genuinely reaches the circle here
      }
    }
    // Either the vertex is still inside the cell (top == id — the cell
    // extends beyond it) or a new neighbor surfaced: both cases are fixed by
    // one more binary search along the ray q0 → v.
    if (std::optional<EdgeEstimate> e = finder.FindEdgeOnRay(id, q0, v)) {
      if (static_cast<int>(result.edges.size()) < options_.max_edges) {
        refine_chord(*e);
        if (add_edge(*e)) poly = rebuild();
      }
    }
  }

  result.cell = std::move(poly);
  result.area = result.cell.Area();
  result.queries = client_->queries_used() - start_queries;
  cells_counter_.Add(1);
  edges_counter_.Add(result.edges.size());
  queries_counter_.Add(result.queries);
  return result;
}

std::optional<LnrCellResult> LnrCellComputer::ComputeTopkCell(int id,
                                                               const Vec2& q0) {
  const uint64_t start_queries = client_->queries_used();
  const Box& box = client_->region();
  const double grid =
      std::max({1.0, std::abs(box.hi.x), std::abs(box.hi.y)}) * 1e-9;
  const int k = client_->k();
  const int sentinel = std::numeric_limits<int>::max();

  LnrEdgeFinder finder(client_, options_.search, CellMembership::kTopK);

  LnrCellResult result;
  std::unordered_set<int> known_bisectors;
  // Anchor pairs already tried per tuple, so failed discoveries are retried
  // only once genuinely new anchors appear in the cache.
  std::unordered_set<uint64_t> tried_pairs;
  // Every ranked answer observed during this computation, including the
  // binary searches' internal probes: the §4.2 co-occurrence information.
  std::vector<std::pair<Vec2, std::vector<int>>> cache;
  // Tuples seen in the same answer as the focal one (the paper's D').
  std::vector<int> cooccur;
  std::unordered_set<int> cooccur_set;

  auto ingest = [&](const Vec2& loc, const std::vector<int>& ids) {
    cache.push_back({loc, ids});
    if (RankIndex(ids, id) == sentinel) return;
    for (int other : ids) {
      if (other != id && cooccur_set.insert(other).second) {
        cooccur.push_back(other);
      }
    }
  };
  finder.SetObserver(ingest);

  const std::vector<int> ids0 = client_->Query(q0);
  ingest(q0, ids0);
  if (RankIndex(ids0, id) == sentinel) return std::nullopt;

  auto add_edge = [&](const Line& line, int neighbor, const Vec2& near,
                      const Vec2& far) {
    if (neighbor < 0 || !known_bisectors.insert(neighbor).second) return false;
    result.edges.push_back({line, neighbor, false, near, far});
    return true;
  };

  // Coverage-limit chords (§5.3): hard clips where the top-k membership of
  // t ends at the d_max circle rather than at a bisector. Once three chord
  // crossings pin down the d_max disc, the disc polygon replaces them as
  // the clip domain (a circle cannot be tiled by chords one at a time).
  std::vector<Line> chords;
  std::unordered_set<LineKey, LineKeyHash> chord_keys;
  std::vector<Vec2> circle_points;
  bool has_disc = false;
  Vec2 disc_center;
  ConvexPolygon base_domain = ConvexPolygon::FromBox(box);
  auto try_form_disc = [&]() {
    if (has_disc) return false;
    const std::optional<Vec2> center =
        DetectCoverageDisc(circle_points, client_->max_radius());
    if (!center.has_value()) return false;
    has_disc = true;
    disc_center = *center;
    const ConvexPolygon disc =
        InscribedCirclePolygon(disc_center, client_->max_radius());
    for (size_t i = 0; i < disc.size() && !base_domain.IsEmpty(); ++i) {
      const Vec2& a = disc.vertices()[i];
      const Vec2& b = disc.vertices()[(i + 1) % disc.size()];
      base_domain = base_domain.Clip(HalfPlane(Line::Through(b, a)));
    }
    chords.clear();
    return true;
  };
  auto add_chord = [&](Line line, const Vec2& member_side,
                       const Vec2& circle_point) {
    if (has_disc) return false;
    circle_points.push_back(circle_point);
    if (try_form_disc()) return true;
    if (line.Side(member_side) > 0) line = Line(-line.normal, -line.offset);
    if (!chord_keys.insert(MakeLineKey(line, grid * 1e6)).second) return false;
    chords.push_back(line);
    return true;
  };
  auto member_pred = [&](const std::vector<int>& ids) {
    return RankIndex(ids, id) != std::numeric_limits<int>::max();
  };

  // Window half-width for the branch-certified local-tangent search.
  const double baseline = 0.01 * Distance(box.lo, box.hi);

  // "other is closer than t" wherever observable (one of the two visible);
  // unobservable points count as false.
  auto closer_pred = [&](int other) {
    return [this, id, other](const std::vector<int>& ids) {
      (void)this;
      return RankIndex(ids, other) < RankIndex(ids, id);
    };
  };
  // A genuine B(t, other) crossing swaps exactly the adjacent pair: t's
  // rank improves by one across it (or t enters at the tail). Boundaries of
  // mere observability (a third tuple displacing `other`) are rejected.
  auto bisector_validator = [&](int other) {
    return [this, id, other](const FlipPoint& flip) {
      (void)this;
      const int s = std::numeric_limits<int>::max();
      const int rt_true = RankIndex(flip.near_ids, id);
      const int rt_false = RankIndex(flip.far_ids, id);
      if (rt_false == s) return false;
      if (RankIndex(flip.near_ids, other) == s) return false;
      if (rt_true == s) {
        return rt_false == static_cast<int>(flip.far_ids.size()) - 1;
      }
      return rt_false == rt_true - 1;
    };
  };

  // Discovers B(t, other) between a point where `other` outranks t and a
  // nearby point where t outranks `other`, scanning sub-intervals so the
  // validated search can reject observability walls and move on. Untried
  // anchor pairs are attempted nearest-first; as the cache grows, later
  // calls get fresh pairs, so a tuple whose bisector is only observable in
  // a region explored later still gets discovered.
  auto discover_bisector = [&](int other) {
    if (known_bisectors.count(other)) return false;
    const auto pred = closer_pred(other);
    const auto validator = bisector_validator(other);

    // Anchor pools. Fresh vectors: `cache` grows during the searches below.
    std::vector<Vec2> true_anchors, false_anchors;
    for (const auto& [loc, ids] : cache) {
      const int rt = RankIndex(ids, id);
      const int ro = RankIndex(ids, other);
      if (ro < rt) {
        true_anchors.push_back(loc);
      } else if (rt < ro) {
        false_anchors.push_back(loc);
      }
    }
    if (true_anchors.empty() || false_anchors.empty()) return false;

    // All candidate pairs by ascending distance (short segments cross the
    // fewest irrelevant boundaries); keep the closest few untried ones.
    struct Pair {
      double d2;
      Vec2 ta, fa;
      uint64_t key;
    };
    std::vector<Pair> candidates;
    for (const Vec2& t_pt : true_anchors) {
      for (const Vec2& f_pt : false_anchors) {
        const LocKey ka = MakeKey(t_pt, grid * 1e3);
        const LocKey kb = MakeKey(f_pt, grid * 1e3);
        uint64_t key = static_cast<uint64_t>(other) * 0x9e3779b97f4a7c15ull;
        key ^= LocKeyHash()(ka) + 0x517cc1b727220a95ull * LocKeyHash()(kb);
        candidates.push_back({SquaredDistance(t_pt, f_pt), t_pt, f_pt, key});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Pair& a, const Pair& b) { return a.d2 < b.d2; });

    int attempted = 0;
    for (const Pair& pair : candidates) {
      if (attempted >= 3) break;
      if (!tried_pairs.insert(pair.key).second) continue;
      ++attempted;

      constexpr int kSubdivisions = 7;
      Vec2 pts_scan[kSubdivisions + 2];
      bool truth[kSubdivisions + 2];
      pts_scan[0] = pair.ta;
      truth[0] = true;
      pts_scan[kSubdivisions + 1] = pair.fa;
      truth[kSubdivisions + 1] = false;
      for (int j = 1; j <= kSubdivisions; ++j) {
        pts_scan[j] = pair.ta + (pair.fa - pair.ta) *
                                    (static_cast<double>(j) /
                                     (kSubdivisions + 1));
        const std::vector<int> ids = client_->Query(pts_scan[j]);
        ingest(pts_scan[j], ids);
        truth[j] = pred(ids);
      }
      for (int j = 0; j <= kSubdivisions; ++j) {
        if (!truth[j] || truth[j + 1]) continue;
        std::optional<Line> line = finder.FindBoundaryLine(
            pred, pts_scan[j], pts_scan[j + 1], baseline, validator);
        if (!line.has_value()) continue;
        if (line->Side(pair.ta) < 0) {
          // Positive side = `other` closer (a global bisector property).
          *line = Line(-line->normal, -line->offset);
        }
        if (add_edge(*line, other, pair.fa, pair.ta)) return true;
      }
    }
    return false;
  };

  // Discovers the cell-boundary piece crossed between a member point and
  // the non-member point v: the membership flip is always observable, and
  // its newcomer identifies the bisector (or a d_max chord when no tuple
  // displaced t).
  auto discover_from_vertex = [&](const Vec2& v) {
    const Vec2* member_anchor = &q0;
    double best_d = SquaredDistance(q0, v);
    for (const auto& [loc, ids_c] : cache) {
      if (!member_pred(ids_c)) continue;
      const double d2 = SquaredDistance(loc, v);
      if (d2 < best_d) {
        best_d = d2;
        member_anchor = &loc;
      }
    }
    const Vec2 anchor = *member_anchor;  // copy: cache reallocates below

    constexpr int kSubdivisions = 7;
    Vec2 pts_scan[kSubdivisions + 2];
    bool member_at[kSubdivisions + 2];
    pts_scan[0] = anchor;
    member_at[0] = true;
    pts_scan[kSubdivisions + 1] = v;
    member_at[kSubdivisions + 1] = false;
    for (int j = 1; j <= kSubdivisions; ++j) {
      pts_scan[j] =
          anchor + (v - anchor) * (static_cast<double>(j) / (kSubdivisions + 1));
      const std::vector<int> ids_j = client_->Query(pts_scan[j]);
      ingest(pts_scan[j], ids_j);
      member_at[j] = member_pred(ids_j);
    }
    for (int j = 0; j <= kSubdivisions; ++j) {
      if (!member_at[j] || member_at[j + 1]) continue;
      const std::optional<FlipPoint> flip = finder.FindFlipOnSegment(
          member_pred, pts_scan[j], pts_scan[j + 1]);
      if (!flip.has_value()) continue;
      int newcomer = -1;
      for (int other : flip->far_ids) {
        if (std::find(flip->near_ids.begin(), flip->near_ids.end(), other) ==
            flip->near_ids.end()) {
          newcomer = other;
          break;
        }
      }
      if (newcomer >= 0) {
        if (known_bisectors.count(newcomer)) continue;
        auto same_wall = [&, newcomer](const FlipPoint& f) {
          return std::find(f.far_ids.begin(), f.far_ids.end(), newcomer) !=
                     f.far_ids.end() &&
                 RankIndex(f.near_ids, id) != std::numeric_limits<int>::max();
        };
        std::optional<Line> line = finder.FindBoundaryLine(
            member_pred, pts_scan[j], pts_scan[j + 1], baseline, same_wall);
        if (!line.has_value()) continue;
        if (line->Side(flip->near) > 0) {
          *line = Line(-line->normal, -line->offset);
        }
        if (add_edge(*line, newcomer, flip->near, flip->far)) return true;
      } else if (has_disc) {
        continue;  // the disc already explains the membership loss
      } else if (std::optional<Line> chord = finder.FindBoundaryLine(
                     member_pred, pts_scan[j], pts_scan[j + 1], baseline)) {
        if (add_chord(*chord, flip->near, flip->midpoint)) return true;
      }
    }
    return false;
  };

  // Initial edges: four rays (Algorithm 6 adapted to top-k membership).
  const Vec2 dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (const Vec2& d : dirs) {
    if (std::optional<EdgeEstimate> e = finder.FindEdgeOnRay(id, q0, q0 + d)) {
      if (!e->is_box_edge) {
        add_edge(e->edge, e->neighbor_id, e->near_witness, e->far_witness);
      }
    }
  }

  auto rebuild = [&]() {
    ConvexPolygon domain = base_domain;
    for (const Line& c : chords) {
      domain = domain.Clip(HalfPlane(c));
      if (domain.IsEmpty()) return TopkRegion{};
    }
    std::vector<Line> lines;
    lines.reserve(result.edges.size());
    for (const LnrEdgeInfo& e : result.edges) lines.push_back(e.line);
    return ComputeLevelRegionFromLines(lines, domain, k);
  };

  std::unordered_set<LocKey, LocKeyHash> processed;
  TopkRegion region = rebuild();
  result.converged = false;
  int quiet_rounds = 0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (region.IsEmpty()) break;  // ε pathology
    if (static_cast<int>(result.edges.size()) >= options_.max_edges) break;
    bool progress = false;

    // §4.2 completion: every co-occurring tuple needs its bisector — this
    // is what recovers concave notches whose bisectors are only observable
    // deep inside the cell's neighborhood.
    for (size_t ci = 0; ci < cooccur.size() && !progress; ++ci) {
      if (known_bisectors.count(cooccur[ci])) continue;
      progress = discover_bisector(cooccur[ci]);
    }

    // Theorem-1-style vertex tests on the current outer approximation.
    if (!progress) {
      bool any_unprocessed = false;
      for (const Vec2& v : region.BoundaryVertices()) {
        const LocKey key = MakeKey(v, grid);
        if (processed.count(key)) continue;
        any_unprocessed = true;
        processed.insert(key);
        const std::vector<int> ids = client_->Query(v);
        ingest(v, ids);
        if (RankIndex(ids, id) != sentinel) {
          continue;  // vertex inside/on the true cell: fine for an outer approx
        }
        if (has_disc && static_cast<int>(ids.size()) < k &&
            Distance(v, disc_center) >=
                client_->max_radius() * (1.0 - 2e-3)) {
          continue;  // truncated answer on the circle: the disc handles it
        }
        // Try the bisectors of the returned tuples first, then the generic
        // membership crossing toward v.
        for (int other : ids) {
          if (discover_bisector(other)) {
            progress = true;
            break;
          }
        }
        if (!progress) progress = discover_from_vertex(v);
        if (progress) break;
      }

      // Interior verification: the region must consist of member locations
      // only. Probing each piece at a few area-proportional points exposes
      // excess areas — e.g. a concave notch whose bisectors have no vertex
      // anywhere near them — and seeds the membership-crossing discovery
      // inside them. Deterministic seed: the cell computation must not
      // depend on outside RNG state.
      bool any_probe_left = false;
      if (!progress) {
        Rng probe_rng(0x7e57c311u + static_cast<uint64_t>(iter) * 977u);
        for (const ConvexPolygon& piece : region.pieces) {
          if (piece.IsEmpty() || progress) break;
          const int samples = std::min<int>(
              6, 1 + static_cast<int>(24.0 * piece.Area() / region.area));
          for (int sidx = 0; sidx < samples && !progress; ++sidx) {
            const Vec2 c =
                sidx == 0 ? piece.Centroid() : piece.SamplePoint(probe_rng);
            const LocKey key = MakeKey(c, grid);
            if (processed.count(key)) continue;
            any_probe_left = true;
            processed.insert(key);
            const std::vector<int> ids = client_->Query(c);
            ingest(c, ids);
            if (RankIndex(ids, id) != sentinel) continue;  // member: fine
            for (int other : ids) {
              if (discover_bisector(other)) {
                progress = true;
                break;
              }
            }
            if (!progress) progress = discover_from_vertex(c);
          }
        }
      }

      // Converge after two consecutive rounds in which neither the vertex
      // tests nor the interior probes found anything wrong (the second
      // round draws fresh probe locations).
      (void)any_probe_left;
      if (!progress && !any_unprocessed) {
        if (++quiet_rounds >= options_.interior_quiet_rounds) {
          result.converged = true;
          break;
        }
      } else if (progress) {
        quiet_rounds = 0;
      }
    }

    if (progress) region = rebuild();
  }

  result.area = region.area;
  result.region = std::move(region);
  result.queries = client_->queries_used() - start_queries;
  cells_counter_.Add(1);
  edges_counter_.Add(result.edges.size());
  queries_counter_.Add(result.queries);
  return result;
}

}  // namespace lbsagg
