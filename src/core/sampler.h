#ifndef LBSAGG_CORE_SAMPLER_H_
#define LBSAGG_CORE_SAMPLER_H_

#include <memory>

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "geometry/topk_region.h"
#include "util/rng.h"
#include "workload/census.h"

namespace lbsagg {

// Distribution of the random query locations that drive the estimators.
//
// The Horvitz–Thompson weights require the *exact* inclusion probability
// p(t) = ∫_{V_h(t)} f(q) dq of each sampled tuple's top-h Voronoi cell
// (Eq. (1), §3.1 and §5.2): an estimator stays unbiased under any sampling
// density as long as this integral is computed exactly, which is why the
// interface exposes RegionProbability() instead of a plain pdf.
class QuerySampler {
 public:
  virtual ~QuerySampler() = default;

  // Draws a query location with the sampler's density f.
  virtual Vec2 Sample(Rng& rng) const = 0;

  // ∫_region f — the probability that Sample() lands in the region.
  virtual double RegionProbability(const TopkRegion& region) const = 0;
  virtual double RegionProbability(const ConvexPolygon& polygon) const = 0;

  // Draws a point with density f conditioned on the region (used by the
  // §3.2.4 Monte-Carlo trials so they stay unbiased under weighted
  // sampling). Default implementation: rejection against Sample().
  virtual Vec2 SampleFromRegion(const TopkRegion& region, Rng& rng) const;

  // The region the sampler covers.
  virtual const Box& box() const = 0;
};

// Uniform sampling over the bounding region: f = 1/|B| (§3.1 baseline).
class UniformSampler : public QuerySampler {
 public:
  explicit UniformSampler(const Box& box) : box_(box) {}

  Vec2 Sample(Rng& rng) const override { return box_.SamplePoint(rng); }
  double RegionProbability(const TopkRegion& region) const override;
  double RegionProbability(const ConvexPolygon& polygon) const override;
  Vec2 SampleFromRegion(const TopkRegion& region, Rng& rng) const override;
  const Box& box() const override { return box_; }

 private:
  Box box_;
};

// External-knowledge weighted sampling (§5.2): query locations are drawn
// with density proportional to a census population grid. Region
// probabilities are computed exactly by clipping every convex piece of the
// region against the grid cells, so estimates remain unbiased even when the
// census poorly matches the true tuple density.
class CensusSampler : public QuerySampler {
 public:
  // `census` must outlive the sampler.
  explicit CensusSampler(const CensusGrid* census) : census_(census) {}

  Vec2 Sample(Rng& rng) const override { return census_->Sample(rng); }
  double RegionProbability(const TopkRegion& region) const override;
  double RegionProbability(const ConvexPolygon& polygon) const override;
  Vec2 SampleFromRegion(const TopkRegion& region, Rng& rng) const override;
  const Box& box() const override { return census_->box(); }

 private:
  const CensusGrid* census_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_SAMPLER_H_
