#include "core/sampler.h"

#include <algorithm>
#include <cmath>

#include "geometry/line.h"
#include "util/check.h"

namespace lbsagg {

Vec2 QuerySampler::SampleFromRegion(const TopkRegion& region, Rng& rng) const {
  // Correct only for uniform densities; samplers with non-uniform f must
  // override (CensusSampler does, with rejection sampling).
  LBSAGG_CHECK(!region.IsEmpty());
  return region.SamplePoint(rng);
}

double UniformSampler::RegionProbability(const TopkRegion& region) const {
  return region.area / box_.Area();
}

double UniformSampler::RegionProbability(const ConvexPolygon& polygon) const {
  return polygon.Area() / box_.Area();
}

Vec2 UniformSampler::SampleFromRegion(const TopkRegion& region,
                                      Rng& rng) const {
  return region.SamplePoint(rng);
}

namespace {

// Clips `piece` to the grid cells it overlaps and accumulates
// area(piece ∩ cell) * density(cell).
double PieceWeight(const ConvexPolygon& piece, const CensusGrid& census) {
  if (piece.IsEmpty()) return 0.0;
  const Box piece_box = piece.BoundingBox();
  const Box& gbox = census.box();
  const double cw = gbox.width() / census.nx();
  const double ch = gbox.height() / census.ny();
  const int ix_lo = std::clamp(
      static_cast<int>(std::floor((piece_box.lo.x - gbox.lo.x) / cw)), 0,
      census.nx() - 1);
  const int ix_hi = std::clamp(
      static_cast<int>(std::floor((piece_box.hi.x - gbox.lo.x) / cw)), 0,
      census.nx() - 1);
  const int iy_lo = std::clamp(
      static_cast<int>(std::floor((piece_box.lo.y - gbox.lo.y) / ch)), 0,
      census.ny() - 1);
  const int iy_hi = std::clamp(
      static_cast<int>(std::floor((piece_box.hi.y - gbox.lo.y) / ch)), 0,
      census.ny() - 1);

  double weight = 0.0;
  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    // Clip once per row, then per column, to keep the work proportional to
    // the number of overlapped cells.
    const double y0 = gbox.lo.y + iy * ch;
    ConvexPolygon row = piece
        .Clip(HalfPlane(Line({0.0, -1.0}, -y0)))           // y >= y0
        .Clip(HalfPlane(Line({0.0, 1.0}, y0 + ch)));       // y <= y0 + ch
    if (row.IsEmpty()) continue;
    for (int ix = ix_lo; ix <= ix_hi; ++ix) {
      const double x0 = gbox.lo.x + ix * cw;
      const ConvexPolygon cellpoly = row
          .Clip(HalfPlane(Line({-1.0, 0.0}, -x0)))         // x >= x0
          .Clip(HalfPlane(Line({1.0, 0.0}, x0 + cw)));     // x <= x0 + cw
      if (cellpoly.IsEmpty()) continue;
      weight += cellpoly.Area() * census.CellDensity(ix, iy);
    }
  }
  return weight;
}

}  // namespace

double CensusSampler::RegionProbability(const TopkRegion& region) const {
  double weight = 0.0;
  for (const ConvexPolygon& piece : region.pieces) {
    weight += PieceWeight(piece, *census_);
  }
  return weight / census_->TotalWeight();
}

double CensusSampler::RegionProbability(const ConvexPolygon& polygon) const {
  return PieceWeight(polygon, *census_) / census_->TotalWeight();
}

Vec2 CensusSampler::SampleFromRegion(const TopkRegion& region,
                                     Rng& rng) const {
  LBSAGG_CHECK(!region.IsEmpty());
  // Rejection sampling: uniform proposal over the region, acceptance
  // proportional to density / density_max over the region's bounding cells.
  const Box rbox = region.BoundingBox();
  double f_max = 0.0;
  const Box& gbox = census_->box();
  const double cw = gbox.width() / census_->nx();
  const double ch = gbox.height() / census_->ny();
  const int ix_lo = std::clamp(
      static_cast<int>(std::floor((rbox.lo.x - gbox.lo.x) / cw)), 0,
      census_->nx() - 1);
  const int ix_hi = std::clamp(
      static_cast<int>(std::floor((rbox.hi.x - gbox.lo.x) / cw)), 0,
      census_->nx() - 1);
  const int iy_lo = std::clamp(
      static_cast<int>(std::floor((rbox.lo.y - gbox.lo.y) / ch)), 0,
      census_->ny() - 1);
  const int iy_hi = std::clamp(
      static_cast<int>(std::floor((rbox.hi.y - gbox.lo.y) / ch)), 0,
      census_->ny() - 1);
  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    for (int ix = ix_lo; ix <= ix_hi; ++ix) {
      f_max = std::max(f_max, census_->CellDensity(ix, iy));
    }
  }
  LBSAGG_CHECK_GT(f_max, 0.0);
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const Vec2 p = region.SamplePoint(rng);
    if (rng.Uniform01() * f_max <= census_->DensityAt(p)) return p;
  }
  // Densities are floored at a positive value, so this is unreachable in
  // practice; fall back to an unweighted point rather than looping forever.
  return region.SamplePoint(rng);
}

}  // namespace lbsagg
