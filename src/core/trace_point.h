#ifndef LBSAGG_CORE_TRACE_POINT_H_
#define LBSAGG_CORE_TRACE_POINT_H_

#include <cstdint>

namespace lbsagg {

// One point of an estimation trace: the running estimate after a sampling
// round, indexed by cumulative interface queries. Figure 12 plots these.
//
// Deliberately dependency-free: every estimator, the engine's aggregation
// layer, and core/runner all speak this type, and none of them should drag
// in another's header for it.
struct TracePoint {
  uint64_t queries = 0;
  double estimate = 0.0;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_TRACE_POINT_H_
