#ifndef LBSAGG_CORE_GROUND_TRUTH_H_
#define LBSAGG_CORE_GROUND_TRUTH_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/topk_region.h"
#include "spatial/kdtree.h"

namespace lbsagg {

// Exact top-h Voronoi cells from full knowledge of the dataset — the test
// oracle the estimation algorithms are validated against. Never used by the
// estimators themselves (they only see the restricted client interfaces).
//
// Cells are computed with *certified pruning*: only points within a radius ρ
// of the focal point are used as constraints, where ρ is grown until
// ρ >= 2 · max_{v ∈ cell} d(v, focal). A point farther than ρ can then never
// be closer to any cell location than the focal point is, so the pruned cell
// equals the exact one.
class GroundTruthOracle {
 public:
  GroundTruthOracle(std::vector<Vec2> positions, const Box& box);

  // Exact top-h cell of point `id`, clipped to the box.
  TopkRegion TopkCell(int id, int h) const;

  // Area of the exact top-h cell.
  double TopkCellArea(int id, int h) const;

  // Exact sampling probability of the top-h cell under the uniform query
  // distribution: area / |B|.
  double UniformInclusionProbability(int id, int h) const;

  const Box& box() const { return box_; }
  size_t size() const { return positions_.size(); }
  const Vec2& position(int id) const { return positions_[id]; }

 private:
  std::vector<Vec2> positions_;
  Box box_;
  KdTree index_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_GROUND_TRUTH_H_
