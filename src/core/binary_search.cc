#include "core/binary_search.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"

namespace lbsagg {

LnrEdgeFinder::LnrEdgeFinder(LnrClient* client, BinarySearchOptions options,
                             CellMembership membership)
    : client_(client),
      options_(options),
      membership_(membership),
      probes_counter_(
          obs::GetCounter(options.registry, "estimator.binary_search.probes")),
      depth_hist_(obs::GetHistogram(
          options.registry, "estimator.binary_search.depth",
          obs::SmallCountBounds(options.max_steps))) {
  LBSAGG_CHECK(client_ != nullptr);
  const double diag = Distance(client_->region().lo, client_->region().hi);
  delta_ = options_.delta_fraction * diag;
  delta_prime_ = options_.delta_prime_fraction * diag;
  LBSAGG_CHECK_GT(delta_, 0.0);
  LBSAGG_CHECK_GT(delta_prime_, 0.0);
}

bool LnrEdgeFinder::IsMember(const std::vector<int>& ids, int id) const {
  if (membership_ == CellMembership::kTop1) {
    return !ids.empty() && ids.front() == id;
  }
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

namespace {

// First id of `far_ids` not present in `near_ids` — the tuple that displaced
// the focal one across the edge. -1 if none (degenerate).
int NewcomerId(const std::vector<int>& near_ids,
               const std::vector<int>& far_ids) {
  for (int id : far_ids) {
    if (std::find(near_ids.begin(), near_ids.end(), id) == near_ids.end()) {
      return id;
    }
  }
  return -1;
}

}  // namespace

std::vector<int> LnrEdgeFinder::Probe(const Vec2& p) {
  probes_counter_.Add(1);
  std::vector<int> ids = client_->Query(p);
  if (observer_) observer_(p, ids);
  return ids;
}

std::optional<FlipPoint> LnrEdgeFinder::FindFlipOnSegment(
    const std::function<bool(const std::vector<int>&)>& predicate,
    const Vec2& a, const Vec2& b) {
  std::vector<int> near_ids = Probe(a);
  if (!predicate(near_ids)) return std::nullopt;
  std::vector<int> far_ids = Probe(b);
  if (predicate(far_ids)) return std::nullopt;

  Vec2 lo = a;
  Vec2 hi = b;
  int steps = 0;
  while (Distance(lo, hi) > delta_ && steps++ < options_.max_steps) {
    const Vec2 mid = Midpoint(lo, hi);
    std::vector<int> ids = Probe(mid);
    if (predicate(ids)) {
      lo = mid;
      near_ids = std::move(ids);
    } else {
      hi = mid;
      far_ids = std::move(ids);
    }
  }

  depth_hist_.Observe(static_cast<double>(steps));

  FlipPoint flip;
  flip.midpoint = Midpoint(lo, hi);
  flip.near = lo;
  flip.far = hi;
  flip.near_ids = std::move(near_ids);
  flip.far_ids = std::move(far_ids);
  return flip;
}

std::optional<Line> LnrEdgeFinder::FindBoundaryLine(
    const std::function<bool(const std::vector<int>&)>& predicate,
    const Vec2& true_pt, const Vec2& false_pt, double baseline,
    const std::function<bool(const FlipPoint&)>& validator) {
  const Box& box = client_->region();
  const std::optional<FlipPoint> main_flip =
      FindFlipOnSegment(predicate, true_pt, false_pt);
  if (!main_flip.has_value()) return std::nullopt;
  if (validator && !validator(*main_flip)) return std::nullopt;
  const Vec2 m1 = main_flip->midpoint;
  const Vec2 u = Normalized(false_pt - true_pt);
  const Vec2 n = Perp(u);

  for (double w = baseline; w >= 8.0 * delta_; w *= 0.25) {
    Vec2 side_points[2];
    bool ok = true;
    for (int s = 0; s < 2 && ok; ++s) {
      const double sign = s == 0 ? +1.0 : -1.0;
      const Vec2 center = m1 + n * (w * sign);
      const Vec2 a = center - u * (2.0 * w);
      const Vec2 b = center + u * (2.0 * w);
      if (!box.Contains(a) || !box.Contains(b)) {
        ok = false;
        break;
      }
      std::optional<FlipPoint> flip = FindFlipOnSegment(predicate, a, b);
      if (!flip.has_value()) flip = FindFlipOnSegment(predicate, b, a);
      if (!flip.has_value() || (validator && !validator(*flip))) {
        ok = false;
        break;
      }
      side_points[s] = flip->midpoint;
    }
    if (!ok) continue;
    if (Distance(side_points[0], side_points[1]) < 8.0 * delta_) continue;
    const Line line = Line::Through(side_points[1], side_points[0]);
    // Certify all three crossings lie on one straight boundary piece.
    if (line.DistanceTo(m1) > std::max(16.0 * delta_, 1e-3 * w)) continue;
    return line;
  }
  return std::nullopt;
}

std::optional<EdgeEstimate> LnrEdgeFinder::FindEdgeOnRay(int id, const Vec2& c1,
                                                         const Vec2& c2) {
  const Box& box = client_->region();
  LBSAGG_CHECK(Distance(c1, c2) > 0.0);
  const Vec2 dir = Normalized(c2 - c1);
  const Ray ray(c1, dir);
  const double t_exit = ray.ExitParam(box);
  if (t_exit <= 0.0) return std::nullopt;
  // Stay strictly inside the box to avoid clamping artifacts.
  const Vec2 cb = ray.At(t_exit * (1.0 - 1e-12));

  auto member = [&](const std::vector<int>& ids) { return IsMember(ids, id); };

  // If the cell still owns the box-exit point, the intercepted "edge" is the
  // bounding box itself.
  const std::optional<FlipPoint> main_flip = FindFlipOnSegment(member, c1, cb);
  if (!main_flip.has_value()) {
    // Either c1 is not a member (caller error — report as failure) or cb is
    // still a member (box edge).
    std::vector<int> at_c1 = Probe(c1);
    if (!member(at_c1)) return std::nullopt;
    EdgeEstimate e;
    e.is_box_edge = true;
    e.neighbor_id = -1;
    e.near_witness = cb;
    e.far_witness = cb;
    // Pick the box side the exit point lies on (ties: the dominant axis of
    // the direction).
    const double dx_hi = box.hi.x - cb.x;
    const double dx_lo = cb.x - box.lo.x;
    const double dy_hi = box.hi.y - cb.y;
    const double dy_lo = cb.y - box.lo.y;
    const double m = std::min({dx_hi, dx_lo, dy_hi, dy_lo});
    if (m == dx_hi) {
      e.edge = Line({1.0, 0.0}, box.hi.x);
    } else if (m == dx_lo) {
      e.edge = Line({-1.0, 0.0}, -box.lo.x);
    } else if (m == dy_hi) {
      e.edge = Line({0.0, 1.0}, box.hi.y);
    } else {
      e.edge = Line({0.0, -1.0}, -box.lo.y);
    }
    if (e.edge.Side(c1) > 0) {
      e.edge = Line(-e.edge.normal, -e.edge.offset);
    }
    return e;
  }

  const Vec2 c3 = main_flip->near;
  const Vec2 c4 = main_flip->far;
  const int neighbor = membership_ == CellMembership::kTop1
                           ? (main_flip->far_ids.empty()
                                  ? -1
                                  : main_flip->far_ids.front())
                           : NewcomerId(main_flip->near_ids,
                                        main_flip->far_ids);

  // Top-k cells may be concave with multiple boundary branches per
  // neighbor, where Algorithm 7's long tilted rays can cross a different
  // branch; use the branch-certified local search instead (kTop1 keeps the
  // paper's original construction).
  if (membership_ == CellMembership::kTopK) {
    // Certify the line against the same displacing tuple on every flip; an
    // uncertified guess attributed to `neighbor` would permanently block
    // the real bisector (edges are deduplicated by neighbor id), so fail
    // instead and let the later §4.2 discovery find it.
    const double baseline = 0.01 * Distance(box.lo, box.hi);
    std::function<bool(const FlipPoint&)> validator;
    if (neighbor >= 0) {
      validator = [neighbor](const FlipPoint& f) {
        return std::find(f.far_ids.begin(), f.far_ids.end(), neighbor) !=
               f.far_ids.end();
      };
    }
    std::optional<Line> line =
        FindBoundaryLine(member, c1, cb, baseline, validator);
    if (!line.has_value()) return std::nullopt;
    EdgeEstimate e;
    e.neighbor_id = neighbor;
    e.near_witness = c3;
    e.far_witness = c4;
    e.edge = *line;
    if (e.edge.Side(c1) > 0) {
      e.edge = Line(-e.edge.normal, -e.edge.offset);
    }
    return e;
  }

  // Tilted rays ±arcsin(δ'/r) (Algorithm 7, lines 5-7).
  const double r = std::max(Distance(c1, c4), 1e-12);
  const double angle = std::asin(std::min(1.0, delta_prime_ / r));
  std::optional<FlipPoint> side_flip;
  for (const double sign : {+1.0, -1.0}) {
    const Vec2 dir_i = Rotated(dir, sign * angle);
    const Ray ray_i(c1, dir_i);
    const double exit_i = ray_i.ExitParam(box);
    if (exit_i <= 0.0) continue;
    const Vec2 cb_i = ray_i.At(exit_i * (1.0 - 1e-12));
    std::optional<FlipPoint> flip = FindFlipOnSegment(member, c1, cb_i);
    if (!flip.has_value()) continue;
    // Success requires the far side to expose the same neighbor tuple.
    const int other =
        membership_ == CellMembership::kTop1
            ? (flip->far_ids.empty() ? -1 : flip->far_ids.front())
            : NewcomerId(flip->near_ids, flip->far_ids);
    if (other == neighbor && neighbor != -1) {
      side_flip = std::move(flip);
      break;
    }
  }

  EdgeEstimate e;
  e.neighbor_id = neighbor;
  e.near_witness = c3;
  e.far_witness = c4;
  if (side_flip.has_value() &&
      Distance(main_flip->midpoint, side_flip->midpoint) > 1e-12) {
    e.edge = Line::Through(main_flip->midpoint, side_flip->midpoint);
  } else {
    // Fallback: the line through the midpoint, perpendicular to the ray.
    e.edge = Line(dir, Dot(dir, main_flip->midpoint));
  }
  if (e.edge.Side(c1) > 0) {
    e.edge = Line(-e.edge.normal, -e.edge.offset);
  }
  return e;
}

}  // namespace lbsagg
