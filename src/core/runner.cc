#include "core/runner.h"

#include <algorithm>
#include <cmath>

#include "engine/engine.h"
#include "engine/log/durable_log.h"
#include "util/check.h"

namespace lbsagg {

RunResult RunWithBudget(const EstimatorHandle& handle, uint64_t budget,
                        size_t max_rounds) {
  LBSAGG_CHECK_GT(budget, 0u);
  RunResult result;
  size_t rounds = 0;
  while (handle.queries_used() < budget && rounds < max_rounds) {
    handle.step();
    ++rounds;
    result.trace.push_back({handle.queries_used(), handle.estimate()});
  }
  result.final_estimate = handle.estimate();
  result.queries = handle.queries_used();
  return result;
}

RunResult RunUntilConfidence(const EstimatorHandle& handle,
                             double target_fraction, uint64_t budget,
                             size_t min_rounds) {
  LBSAGG_CHECK(handle.confidence_half_width != nullptr)
      << "estimator does not report confidence intervals";
  LBSAGG_CHECK_GT(target_fraction, 0.0);
  RunResult result;
  size_t rounds = 0;
  while (handle.queries_used() < budget) {
    handle.step();
    ++rounds;
    result.trace.push_back({handle.queries_used(), handle.estimate()});
    if (rounds < min_rounds) continue;
    const double estimate = handle.estimate();
    if (estimate != 0.0 &&
        handle.confidence_half_width() <=
            target_fraction * std::abs(estimate)) {
      break;
    }
  }
  result.final_estimate = handle.estimate();
  result.queries = handle.queries_used();
  return result;
}

std::vector<RunResult> RunEngineWithBudget(engine::EstimationEngine* engine,
                                           uint64_t budget,
                                           size_t max_rounds) {
  return RunEngineWithBudget(engine, nullptr, budget, max_rounds);
}

std::vector<RunResult> RunEngineWithBudget(engine::EstimationEngine* engine,
                                           engine::DurableEvidenceLog* wal,
                                           uint64_t budget,
                                           size_t max_rounds) {
  LBSAGG_CHECK(engine != nullptr);
  LBSAGG_CHECK_GT(budget, 0u);
  size_t rounds = 0;
  while (engine->queries_used() < budget && rounds < max_rounds) {
    engine->Step();
    ++rounds;
    // Checkpoints run between steps, never inside the sink callbacks: the
    // aggregates fold after EndRound commits, and a checkpoint must capture
    // post-fold state.
    if (wal != nullptr) wal->MaybeCheckpoint();
  }
  if (wal != nullptr) wal->Close();
  std::vector<RunResult> results;
  results.reserve(engine->num_aggregates());
  for (size_t i = 0; i < engine->num_aggregates(); ++i) {
    const engine::AggregateQuery& query = *engine->aggregate(i);
    RunResult result;
    result.trace = query.trace();
    result.final_estimate = query.Estimate();
    result.queries = engine->queries_used();
    results.push_back(std::move(result));
  }
  return results;
}

double EstimateAtCost(const std::vector<TracePoint>& trace, uint64_t cost) {
  double estimate = 0.0;
  for (const TracePoint& p : trace) {
    if (p.queries > cost) break;
    estimate = p.estimate;
  }
  return estimate;
}

ErrorCurve ComputeErrorCurve(const std::vector<RunResult>& runs, double truth,
                             int num_checkpoints) {
  LBSAGG_CHECK(!runs.empty());
  LBSAGG_CHECK_GE(num_checkpoints, 2);
  uint64_t max_cost = std::numeric_limits<uint64_t>::max();
  for (const RunResult& run : runs) {
    max_cost = std::min(max_cost, run.queries);
  }
  LBSAGG_CHECK_GT(max_cost, 0u);

  ErrorCurve curve;
  curve.checkpoints.reserve(num_checkpoints);
  curve.mean_rel_error.reserve(num_checkpoints);
  for (int i = 1; i <= num_checkpoints; ++i) {
    const uint64_t c = static_cast<uint64_t>(
        static_cast<double>(max_cost) * i / num_checkpoints);
    double total = 0.0;
    for (const RunResult& run : runs) {
      total += RelativeError(EstimateAtCost(run.trace, c), truth);
    }
    curve.checkpoints.push_back(c);
    curve.mean_rel_error.push_back(total / runs.size());
  }
  return curve;
}

obs::RunReport BuildRunReport(const std::string& estimator_name,
                              const RunResult& result,
                              obs::MetricsRegistry* registry) {
  obs::RunReport report;
  report.SetMeta("estimator", estimator_name);
  report.SetMetaNum("final_estimate", result.final_estimate);
  report.SetMetaNum("queries", static_cast<double>(result.queries));
  report.SetMetaNum("rounds", static_cast<double>(result.trace.size()));

  RunningStats running_estimate;
  for (const TracePoint& p : result.trace) running_estimate.Add(p.estimate);
  report.AddStats("running_estimate", running_estimate);

  if (registry == nullptr) registry = &obs::MetricsRegistry::Default();
  report.SetSnapshot(registry->Snapshot());
  return report;
}

obs::RunReport BuildRunReport(const std::string& estimator_name,
                              const RunResult& result,
                              const EstimatorHandle& handle,
                              obs::MetricsRegistry* registry) {
  obs::RunReport report = BuildRunReport(estimator_name, result, registry);
  if (handle.diagnostics_json != nullptr) {
    report.AddJsonSection("diagnostics", handle.diagnostics_json());
  }
  return report;
}

double QueryCostForError(const ErrorCurve& curve, double target) {
  LBSAGG_CHECK(!curve.checkpoints.empty());
  for (size_t i = 0; i < curve.checkpoints.size(); ++i) {
    if (curve.mean_rel_error[i] <= target) {
      if (i == 0) return static_cast<double>(curve.checkpoints[0]);
      // Linear interpolation between the straddling checkpoints.
      const double e0 = curve.mean_rel_error[i - 1];
      const double e1 = curve.mean_rel_error[i];
      const double c0 = static_cast<double>(curve.checkpoints[i - 1]);
      const double c1 = static_cast<double>(curve.checkpoints[i]);
      if (e0 <= e1) return c1;
      const double frac = (e0 - target) / (e0 - e1);
      return c0 + frac * (c1 - c0);
    }
  }
  return static_cast<double>(curve.checkpoints.back());
}

}  // namespace lbsagg
