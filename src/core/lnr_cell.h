#ifndef LBSAGG_CORE_LNR_CELL_H_
#define LBSAGG_CORE_LNR_CELL_H_

#include <optional>
#include <vector>

#include "core/binary_search.h"
#include "geometry/polygon.h"
#include "geometry/topk_region.h"
#include "lbs/client.h"

namespace lbsagg {

// One inferred cell edge with enough provenance for §4.3 localization.
struct LnrEdgeInfo {
  Line line;             // oriented: focal-tuple side negative
  int neighbor_id = -1;  // tuple beyond the edge; -1 for a box edge
  bool is_box_edge = false;
  Vec2 near_witness;     // returns the focal tuple
  Vec2 far_witness;      // returns the neighbor instead
};

// Result of an LNR cell inference.
struct LnrCellResult {
  // Top-1 mode: the convex polygon cell. Top-k mode: empty.
  ConvexPolygon cell;
  // Top-k mode: the (possibly concave) region. Top-1 mode: empty pieces.
  TopkRegion region;
  std::vector<LnrEdgeInfo> edges;
  // Area of the inferred cell (either representation).
  double area = 0.0;
  uint64_t queries = 0;
  // False when the iteration cap was hit before closure (cell still usable,
  // possibly with extra ε error).
  bool converged = true;
};

struct LnrCellOptions {
  BinarySearchOptions search;
  int max_iterations = 200;
  int max_edges = 96;
  // Consecutive rounds in which neither the vertex tests nor fresh interior
  // probes find anything wrong before a top-k cell is declared converged.
  // More rounds shave residual over-approximation at extra query cost.
  int interior_quiet_rounds = 2;

  // Metric plane for the estimator.lnr_cell.* counters (cells, edges,
  // queries); null lands on obs::MetricsRegistry::Default(). Propagated
  // into search.registry when that is unset.
  obs::MetricsRegistry* registry = nullptr;
};

// Infers the Voronoi cell of a tuple through a rank-only (LNR) interface —
// the paper's §4 machinery.
//
//  * ComputeTop1Cell — Algorithm 6: the convex top-1 cell, discovered edge
//    by edge with the Appendix-A binary search and Theorem-1-style vertex
//    probing.
//  * ComputeTopkCell — §4.2: the (possibly concave) top-k cell. Internally
//    the cell is reconstructed as the rank-level set of the inferred
//    bisector arrangement, which keeps every intermediate region an *outer*
//    approximation (like the LR case) so concave notches can never be
//    silently lost; each failing vertex exposes a missing bisector via
//    Lemma 1 exactly as the paper argues.
class LnrCellComputer {
 public:
  LnrCellComputer(LnrClient* client, LnrCellOptions options = {});

  // Top-1 cell of tuple `id`; `q0` must be a location where `id` is the
  // top-1 result. Returns nullopt when q0 does not return `id` on top.
  std::optional<LnrCellResult> ComputeTop1Cell(int id, const Vec2& q0);

  // Top-k cell (k = client's k) of tuple `id`; `q0` must return `id`
  // somewhere in its top-k.
  std::optional<LnrCellResult> ComputeTopkCell(int id, const Vec2& q0);

  const LnrCellOptions& options() const { return options_; }

 private:
  LnrClient* client_;
  LnrCellOptions options_;
  obs::CounterRef cells_counter_;
  obs::CounterRef edges_counter_;
  obs::CounterRef queries_counter_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LNR_CELL_H_
