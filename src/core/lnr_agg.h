#ifndef LBSAGG_CORE_LNR_AGG_H_
#define LBSAGG_CORE_LNR_AGG_H_

#include <unordered_map>
#include <vector>

#include "core/aggregate.h"
#include "core/lnr_cell.h"
#include "core/localize.h"
#include "core/lr_agg.h"  // TracePoint
#include "core/sampler.h"
#include "lbs/client.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {

// Per-run diagnostics of the rank-only estimator.
struct LnrAggDiagnostics {
  size_t rounds = 0;
  size_t cells_inferred = 0;  // cells actually computed via binary search
  size_t cache_hits = 0;      // samples served from the probability cache
};

// Configuration of Algorithm LNR-LBS-AGG (§4).
struct LnrAggOptions {
  // When true and the interface k > 1, each sample infers the top-k cell of
  // every returned tuple (§4.2); otherwise only the top-1 tuple's convex
  // cell is used.
  bool use_topk_cells = false;

  LnrCellOptions cell;
  LocalizeOptions localize;

  // §3.2.2 adapted to LNR: cache each tuple's inferred cell probability
  // across samples (the service is static, so it never changes). Disable
  // only for ablation.
  bool reuse_cell_probabilities = true;

  uint64_t seed = 3;

  // Metric plane for the estimator.lnr.* counters and the
  // estimator.lnr.ht_weight histogram; null lands on
  // obs::MetricsRegistry::Default(). Propagated into cell.registry (and from
  // there into the binary searches) when that is unset.
  obs::MetricsRegistry* registry = nullptr;

  // When set, each Step() emits an "estimator.round" span with nested
  // "estimator.cell" spans per cell inference.
  obs::Tracer* tracer = nullptr;
};

// Algorithm LNR-LBS-AGG: SUM/COUNT (and AVG as SUM/COUNT) estimation over a
// rank-only kNN interface. The estimate carries a sampling bias bounded by
// Theorem 2 that shrinks as the binary-search tolerance δ does — it can be
// made arbitrarily small at O(log(1/ε)) extra queries per edge.
class LnrAggEstimator {
 public:
  LnrAggEstimator(LnrClient* client, const QuerySampler* sampler,
                  const AggregateSpec& aggregate, LnrAggOptions options = {});

  // One sampling round: one random location; cells of the used tuples are
  // inferred from ranks alone.
  void Step();

  double Estimate() const;

  // Per-round means of the Horvitz–Thompson numerator and denominator.
  // Pooling these across independent runs gives a combined ratio estimator
  // whose small-sample bias shrinks with the total sample count (averaging
  // per-run ratios would not).
  double NumeratorMean() const { return numerator_.mean(); }
  double DenominatorMean() const { return denominator_.mean(); }

  double ConfidenceHalfWidth(double z = 1.96) const;
  size_t rounds() const { return numerator_.count(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const LnrAggDiagnostics& diagnostics() const { return diagnostics_; }
  const std::vector<TracePoint>& trace() const { return trace_; }

 private:
  // Horvitz–Thompson contribution of one tuple given its inferred cell
  // probability; handles the optional position condition via localization.
  void AccumulateTuple(int id, const Vec2& q0, double probability,
                       double* numerator, double* denominator);

  LnrClient* client_;
  const QuerySampler* sampler_;
  AggregateSpec aggregate_;
  LnrAggOptions options_;
  LnrCellComputer cell_computer_;
  Localizer localizer_;
  // §3.2.2 adapted to LNR: the service is static, so a tuple's inferred
  // cell probability never changes — computing it once per tuple makes
  // every later sample of the same tuple free. Big-cell (rural) tuples are
  // exactly the ones resampled most often.
  std::unordered_map<int, double> top1_probability_cache_;
  std::unordered_map<int, double> topk_probability_cache_;
  Rng rng_;
  RunningStats numerator_;
  RunningStats denominator_;
  LnrAggDiagnostics diagnostics_;
  std::vector<TracePoint> trace_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef cells_inferred_counter_;
  obs::CounterRef cache_hits_counter_;
  obs::HistogramRef ht_weight_hist_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LNR_AGG_H_
