#ifndef LBSAGG_CORE_LNR_AGG_H_
#define LBSAGG_CORE_LNR_AGG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/sampler.h"
#include "core/trace_point.h"
#include "engine/engine.h"
#include "engine/lnr_resolver.h"  // LnrAggOptions, LnrAggDiagnostics
#include "lbs/client.h"

namespace lbsagg {

// Algorithm LNR-LBS-AGG: SUM/COUNT (and AVG as SUM/COUNT) estimation over a
// rank-only kNN interface. The estimate carries a sampling bias bounded by
// Theorem 2 that shrinks as the binary-search tolerance δ does — it can be
// made arbitrarily small at O(log(1/ε)) extra queries per edge.
//
// A thin adapter over the estimation engine (DESIGN.md §4.9): the cell
// inference, probability caching and localization live in
// engine::LnrCellResolver, the HT accumulation in a single
// engine::AggregateQuery. Single-aggregate runs are bit-identical to the
// pre-engine monolith.
class LnrAggEstimator {
 public:
  LnrAggEstimator(LnrClient* client, const QuerySampler* sampler,
                  const AggregateSpec& aggregate, LnrAggOptions options = {});

  // One sampling round: one random location; cells of the used tuples are
  // inferred from ranks alone.
  void Step() { engine_.Step(); }

  double Estimate() const { return query_->Estimate(); }

  // Per-round means of the Horvitz–Thompson numerator and denominator.
  // Pooling these across independent runs gives a combined ratio estimator
  // whose small-sample bias shrinks with the total sample count (averaging
  // per-run ratios would not).
  double NumeratorMean() const { return query_->NumeratorMean(); }
  double DenominatorMean() const { return query_->DenominatorMean(); }

  double ConfidenceHalfWidth(double z = 1.96) const {
    return query_->ConfidenceHalfWidth(z);
  }
  size_t rounds() const { return query_->rounds(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const LnrAggDiagnostics& diagnostics() const {
    return resolver_.diagnostics();
  }
  const std::vector<TracePoint>& trace() const { return query_->trace(); }

  // Resolver diagnostics as raw JSON, picked up by MakeHandle for run
  // reports.
  std::string diagnostics_json() const { return resolver_.diagnostics_json(); }

 private:
  LnrClient* client_;
  engine::LnrCellResolver resolver_;
  engine::EstimationEngine engine_;
  engine::AggregateQuery* query_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LNR_AGG_H_
