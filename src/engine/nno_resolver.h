#ifndef LBSAGG_ENGINE_NNO_RESOLVER_H_
#define LBSAGG_ENGINE_NNO_RESOLVER_H_

// Acquisition layer for the prior-work baseline LR-LBS-NNO (Dalvi et al.
// [10], §1.2, §6.1): top-1 sampling with a disc-growth + Monte-Carlo
// Voronoi-area estimate. The 1/p̂ weight is inherently biased — kept as the
// baseline the unbiased resolvers are compared against.

#include <cstdint>
#include <string>

#include "engine/cell_resolver.h"
#include "lbs/client.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace lbsagg {

// Configuration of the prior-work baseline. The knobs mirror the tunable
// parameters of [10]; benchmarks use settings tuned for its best behaviour,
// as the paper's experiments did. (Defined here with the resolver;
// core/nno_baseline.h re-exports it for the adapter's users.)
struct NnoOptions {
  // Points probed on each ring while growing the candidate disc.
  int ring_points = 6;
  // Monte-Carlo membership samples used for the area estimate.
  int area_samples = 24;
  // Initial disc radius as a multiple of the query→tuple distance.
  double init_radius_factor = 2.0;
  // Maximum disc doublings.
  int max_growth_rounds = 12;
  uint64_t seed = 7;

  // Metric plane for the estimator.nno.* counters (rounds, growth_rounds,
  // mc_probes, mc_hits); null lands on obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;

  // When set, each round emits an "estimator.round" span with a nested
  // "estimator.cell" span around the cell-area estimate.
  obs::Tracer* tracer = nullptr;
};

// Per-run diagnostics of the probe baseline (new with the engine refactor —
// the pre-engine NnoEstimator only exposed these through the metric plane).
struct NnoDiagnostics {
  size_t rounds = 0;
  uint64_t growth_rounds = 0;  // disc doublings across all area estimates
  uint64_t mc_probes = 0;      // Monte-Carlo membership probes issued
  uint64_t mc_hits = 0;        // probes that still returned the tuple
};

namespace engine {

class NnoProbeResolver final : public CellResolver {
 public:
  NnoProbeResolver(LrClient* client, NnoOptions options = {});

  // One sampling round: uniform location, top-1 tuple, and — when some
  // registered aggregate wants the tuple — a probed Voronoi-area estimate.
  void ResolveRound(const EvidenceDemand& demand, EvidenceStore* store) override;

  const LbsClient& client() const override { return *client_; }
  uint64_t queries_used() const override { return client_->queries_used(); }
  const char* name() const override { return "nno"; }
  std::string diagnostics_json() const override;

  // Mutable state: the rng stream and the diagnostics tallies (the probe
  // baseline learns nothing across rounds).
  void SaveState(std::string* out) const override;
  bool RestoreState(std::string_view blob) override;

  const NnoDiagnostics& diagnostics() const { return diagnostics_; }
  const NnoOptions& options() const { return options_; }

 private:
  // Monte-Carlo estimate of |V(t)| for the tuple at `pos`; consumes queries.
  double EstimateCellArea(int id, const Vec2& pos);

  LrClient* client_;
  NnoOptions options_;
  Rng rng_;
  NnoDiagnostics diagnostics_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef growth_rounds_counter_;
  obs::CounterRef mc_probes_counter_;
  obs::CounterRef mc_hits_counter_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_NNO_RESOLVER_H_
