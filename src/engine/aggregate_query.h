#ifndef LBSAGG_ENGINE_AGGREGATE_QUERY_H_
#define LBSAGG_ENGINE_AGGREGATE_QUERY_H_

// The aggregation layer (DESIGN.md §4.9): one AggregateQuery per
// SELECT AGGR(t) WHERE Cond, folding the shared evidence stream into an
// independent Horvitz–Thompson estimate, trace, and confidence half-width.
// The observations are aggregate-agnostic — once p(t) is resolved, Q(t)/p(t)
// is unbiased for every aggregate simultaneously (§2.3, §3.2) — so N
// consumers ride one interface budget, and AVG = SUM/COUNT holds by
// construction (an AVG consumer's numerator/denominator streams are exactly
// the matching SUM/COUNT consumers' numerator streams).

#include <cstddef>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/trace_point.h"
#include "engine/observation.h"
#include "util/stats.h"

namespace lbsagg {
namespace engine {

// One point of an aggregate's convergence trajectory: after `queries`
// interface queries were charged, the estimate stood here with this CI
// half-width. The introspection plane (DESIGN.md §4.13) plots half_width
// against queries to judge whether an evidence stream is still worth
// paying for; recording it is pure observation — the trajectory is derived
// from the same state the trace already captures and perturbs nothing.
struct ConvergencePoint {
  uint64_t queries = 0;
  double estimate = 0.0;
  double half_width = 0.0;
  bool operator==(const ConvergencePoint&) const = default;
};

class AggregateQuery {
 public:
  // `client` is the resolver's restricted client; attribute reads through it
  // are free (no interface queries). Must outlive the query.
  AggregateQuery(const AggregateSpec& spec, const LbsClient* client);

  // Folds one committed round's observation slice into the running
  // estimate, then extends the trace at the round's query boundary.
  void ConsumeRound(const EvidenceRound& round, const Observation* observations,
                    size_t num_observations);

  // Current estimate: mean of per-round estimates (kAvg: ratio of means).
  double Estimate() const;

  // Normal-approximation confidence half-width of the estimate (not
  // meaningful for kAvg).
  double ConfidenceHalfWidth(double z = 1.96) const;

  size_t rounds() const { return numerator_.count(); }
  const AggregateSpec& spec() const { return spec_; }
  const std::vector<TracePoint>& trace() const { return trace_; }

  // CI half-width trajectory vs interface queries, one point per committed
  // round (same boundaries as trace()).
  const std::vector<ConvergencePoint>& convergence() const {
    return convergence_;
  }

  // Per-round means of the Horvitz–Thompson numerator and denominator.
  // Pooling these across independent runs gives a combined ratio estimator
  // whose small-sample bias shrinks with the total sample count (averaging
  // per-run ratios would not).
  double NumeratorMean() const { return numerator_.mean(); }
  double DenominatorMean() const { return denominator_.mean(); }

 private:
  // Horvitz–Thompson contribution of one observation, reproducing the
  // pre-engine estimators' per-family gates and arithmetic bit-for-bit.
  void FoldObservation(const Observation& obs, double* numerator,
                       double* denominator) const;

  AggregateSpec spec_;
  const LbsClient* client_;
  RunningStats numerator_;
  RunningStats denominator_;
  std::vector<TracePoint> trace_;
  std::vector<ConvergencePoint> convergence_;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_AGGREGATE_QUERY_H_
