#ifndef LBSAGG_ENGINE_CELL_RESOLVER_H_
#define LBSAGG_ENGINE_CELL_RESOLVER_H_

// The acquisition layer's interface (DESIGN.md §4.9): a CellResolver turns
// one sampled query point into evidence-store observations, spending
// interface queries only on tuples some registered aggregate actually wants
// (the EvidenceDemand). The three implementations — LrCellResolver,
// LnrCellResolver, NnoProbeResolver — are carved out of the pre-engine
// estimator monoliths and preserve their query/rng streams exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregate.h"
#include "engine/evidence_store.h"
#include "geometry/vec2.h"
#include "lbs/client.h"

namespace lbsagg {
namespace engine {

// The union, over all registered aggregates, of the pre-engine estimators'
// "is this tuple worth a cell computation?" gates. With a single registered
// aggregate each Wants* method reproduces the corresponding monolith's skip
// conditions verbatim — that is what keeps single-aggregate adapter runs
// bit-identical. With several aggregates a tuple is resolved once if *any*
// of them wants it, which is exactly the budget amortization: the weight is
// aggregate-independent (§2.3), so one resolution serves every consumer.
class EvidenceDemand {
 public:
  EvidenceDemand() = default;
  explicit EvidenceDemand(std::vector<const AggregateSpec*> specs)
      : specs_(std::move(specs)) {}

  bool empty() const { return specs_.empty(); }

  // Any aggregate carries a position condition, so resolvers on rank-only
  // interfaces must localize observed tuples (§4.3).
  bool NeedsLocation() const;

  // LR gate (location-returned interfaces, Algorithm 5): the position
  // condition is evaluated on the returned coordinates, and a COUNT/SUM
  // whose numerator is exactly 0 skips the cell computation.
  bool WantsLrTuple(const LbsClient& client, int id, const Vec2& location) const;

  // LNR gate (rank-only interfaces, §4): only the attribute condition is
  // checked before the cell inference — the location is not returned, so the
  // position condition can only be evaluated after localization.
  bool WantsRankedTuple(const LbsClient& client, int id) const;

  // NNO gate (top-1 probe baseline): the position condition gates the
  // values; any nonzero numerator or denominator makes the tuple worth the
  // area estimate.
  bool WantsProbeTuple(const LbsClient& client, int id,
                       const Vec2& location) const;

 private:
  std::vector<const AggregateSpec*> specs_;
};

// Acquisition-layer interface: one ResolveRound call samples one query
// point, issues the interface queries the demand justifies, and commits
// exactly one round (with zero or more observations) to the store.
class CellResolver {
 public:
  virtual ~CellResolver() = default;

  virtual void ResolveRound(const EvidenceDemand& demand,
                            EvidenceStore* store) = 0;

  // The restricted client the observations' attributes are read through.
  virtual const LbsClient& client() const = 0;

  // Cumulative interface queries (the client's attempt-metered counter).
  virtual uint64_t queries_used() const = 0;

  virtual const char* name() const = 0;

  // Resolver-specific diagnostics as a raw JSON object, for run reports.
  virtual std::string diagnostics_json() const = 0;

  // Checkpoint hooks (engine/log/, DESIGN.md §4.14). SaveState appends an
  // opaque binary blob capturing every mutable bit of acquisition state —
  // the rng stream position, learned caches (history / cell-probability
  // maps), and diagnostics — such that a freshly constructed resolver with
  // the same options, after RestoreState, resolves future rounds
  // bit-identically to the saved one. RestoreState must be called on a
  // fresh resolver (no rounds resolved); it returns false when the blob is
  // malformed or belongs to a different resolver family/version.
  virtual void SaveState(std::string* out) const = 0;
  virtual bool RestoreState(std::string_view blob) = 0;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_CELL_RESOLVER_H_
