#ifndef LBSAGG_ENGINE_RESOLVER_STATE_H_
#define LBSAGG_ENGINE_RESOLVER_STATE_H_

// Shared encode/decode helpers for the resolvers' SaveState/RestoreState
// blobs (cell_resolver.h). Each resolver frames its blob as
//   [u8 family tag] [u8 version] [rng state] [family-specific fields]
// through these primitives, so the rng serialization — the part every
// family shares and the part bit-identical resume is most sensitive to —
// cannot diverge between families.

#include <cstdint>

#include "util/binary_io.h"
#include "util/rng.h"

namespace lbsagg {
namespace engine {

// Family tags, first byte of every resolver blob. A blob restored into the
// wrong family fails fast instead of misparsing.
inline constexpr uint8_t kLrResolverTag = 0x4C;   // 'L'
inline constexpr uint8_t kLnrResolverTag = 0x4E;  // 'N'
inline constexpr uint8_t kNnoResolverTag = 0x4F;  // 'O'

inline constexpr uint8_t kResolverStateVersion = 1;

inline void SaveRngState(BinaryWriter* w, const Rng& rng) {
  const Rng::State s = rng.SaveState();
  for (uint64_t word : s.words) w->PutU64(word);
  w->PutF64(s.cached_normal);
  w->PutU8(s.has_cached_normal ? 1 : 0);
}

inline bool RestoreRngState(BinaryReader* r, Rng* rng) {
  Rng::State s;
  for (uint64_t& word : s.words) {
    if (!r->GetU64(&word)) return false;
  }
  uint8_t has_cached = 0;
  if (!r->GetF64(&s.cached_normal) || !r->GetU8(&has_cached)) return false;
  s.has_cached_normal = has_cached != 0;
  rng->RestoreState(s);
  return true;
}

// Header shared by every family blob; returns false on tag/version mismatch.
inline void SaveResolverHeader(BinaryWriter* w, uint8_t tag) {
  w->PutU8(tag);
  w->PutU8(kResolverStateVersion);
}

inline bool CheckResolverHeader(BinaryReader* r, uint8_t expected_tag) {
  uint8_t tag = 0, version = 0;
  if (!r->GetU8(&tag) || !r->GetU8(&version)) return false;
  return tag == expected_tag && version == kResolverStateVersion;
}

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_RESOLVER_STATE_H_
