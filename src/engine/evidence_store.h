#ifndef LBSAGG_ENGINE_EVIDENCE_STORE_H_
#define LBSAGG_ENGINE_EVIDENCE_STORE_H_

// Append-only evidence log (DESIGN.md §4.9). The acquisition layer writes
// rounds through the BeginRound / Append* / EndRound protocol; the
// aggregation layer reads immutable (round, observation-slice) pairs.
//
// Contract:
//  - Append-only: committed rounds and observations are never mutated, so a
//    consumer attached after N rounds can replay exactly what a consumer
//    attached before round 0 saw.
//  - Seed-deterministic: the store adds no nondeterminism of its own — its
//    contents are a pure function of the resolver's seed and the service,
//    which is what the sweep determinism tests pin (identical stores across
//    repeated seeds and any dispatcher worker count).
//  - Per-round snapshots: SnapshotAt(i) reports the cumulative
//    (rounds, observations, queries) totals at the boundary after round i.
//
// Durability seam (DESIGN.md §4.14): the in-memory store is one
// implementation of the evidence stream, not its only home. An EvidenceSink
// attached via set_sink() observes every protocol event as it commits —
// the durable WAL (engine/log/) is such a sink — and an EvidenceSource is
// anything that can hand back committed rounds, which the store itself
// implements (so store→WAL→store round-trips are testable) and the WAL
// replay implements for recovery. RestoreFrom() refills an empty store from
// a source without notifying the sink: recovered rounds are already on disk.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/observation.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace lbsagg {
namespace engine {

// Cumulative totals at a round boundary.
struct EvidenceSnapshot {
  uint64_t rounds = 0;
  uint64_t observations = 0;
  uint64_t queries = 0;
};

// Observer of the evidence protocol, notified as the store commits each
// event. Callbacks fire in strict protocol order (BeginRound, zero or more
// Appends, EndRound) on the acquisition thread; the round passed to
// OnEndRound is the committed record, observations already durable in the
// store. Sinks must not call back into the store.
class EvidenceSink {
 public:
  virtual ~EvidenceSink() = default;
  virtual void OnBeginRound(uint64_t round, const Vec2& sample_point) = 0;
  virtual void OnAppend(uint64_t round, const Observation& observation) = 0;
  virtual void OnEndRound(const EvidenceRound& round) = 0;
};

// Anything that can hand back a committed evidence log: the in-memory store
// below, or a WAL replay (engine/log/wal.h). The (round, slice) views must
// stay valid while the source lives.
class EvidenceSource {
 public:
  virtual ~EvidenceSource() = default;
  virtual size_t NumRounds() const = 0;
  virtual const EvidenceRound& Round(size_t i) const = 0;
  // Null when the round produced no observations.
  virtual const Observation* Observations(const EvidenceRound& r) const = 0;
};

struct EvidenceStoreOptions {
  // Metric plane for the engine.evidence.* counters; null lands on
  // obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;
  // When set, each committed round emits an "engine.evidence.round" span
  // covering BeginRound → EndRound.
  obs::Tracer* tracer = nullptr;
};

class EvidenceStore : public EvidenceSource {
 public:
  explicit EvidenceStore(EvidenceStoreOptions options = {});

  // Opens a round at the sampled query point. Exactly one round may be open
  // at a time.
  void BeginRound(const Vec2& sample_point);

  // Appends one observation to the open round.
  void Append(const Observation& observation);

  // Commits the open round; `queries_after` is the client's cumulative
  // interface-query counter at the boundary. Returns the committed round.
  const EvidenceRound& EndRound(uint64_t queries_after);

  // Attaches (or detaches, with null) the durability sink. Typically done
  // before the first round; when attached mid-run the sink sees only rounds
  // from that point on. Must outlive the store or be detached first.
  void set_sink(EvidenceSink* sink) { sink_ = sink; }
  EvidenceSink* sink() const { return sink_; }

  // Recovery path: appends one already-committed round (observations
  // copied) without notifying the sink — the round came *from* the durable
  // log, echoing it back would double-write it. Requires no open round.
  void RestoreRound(const Vec2& sample_point, uint64_t queries_after,
                    const Observation* observations, size_t n);

  // Refills this store from a source (recovery, or store→store copies in
  // tests). Requires an empty store; the sink is not notified.
  void RestoreFrom(const EvidenceSource& source);

  size_t num_rounds() const { return rounds_.size(); }
  size_t num_observations() const { return log_.size(); }
  const EvidenceRound& round(size_t i) const { return rounds_[i]; }

  // The contiguous observation slice of a committed round (valid for
  // `r.num_observations` entries; null when the round produced none).
  const Observation* observations(const EvidenceRound& r) const {
    return r.num_observations == 0 ? nullptr : log_.data() + r.first_observation;
  }

  // EvidenceSource view of the committed log.
  size_t NumRounds() const override { return rounds_.size(); }
  const EvidenceRound& Round(size_t i) const override { return rounds_[i]; }
  const Observation* Observations(const EvidenceRound& r) const override {
    return observations(r);
  }

  EvidenceSnapshot Snapshot() const;
  EvidenceSnapshot SnapshotAt(size_t round_index) const;

  // {"rounds":N,"observations":M,"queries":Q} — embedded in run reports as
  // the `engine` section. Zero-round stores serialize as all-zeros (queries
  // included), and empty rounds (EndRound without appends) count toward
  // "rounds" while adding nothing to "observations" — the same framing the
  // WAL preserves, so log↔JSON parity holds at the edges.
  std::string ToJson() const;

 private:
  std::vector<EvidenceRound> rounds_;
  std::vector<Observation> log_;
  bool in_round_ = false;
  EvidenceRound open_;
  EvidenceSink* sink_ = nullptr;
  obs::CounterRef rounds_counter_;
  obs::CounterRef observations_counter_;
  obs::Tracer* tracer_ = nullptr;
  double round_start_us_ = 0.0;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_EVIDENCE_STORE_H_
