#ifndef LBSAGG_ENGINE_EVIDENCE_STORE_H_
#define LBSAGG_ENGINE_EVIDENCE_STORE_H_

// Append-only evidence log (DESIGN.md §4.9). The acquisition layer writes
// rounds through the BeginRound / Append* / EndRound protocol; the
// aggregation layer reads immutable (round, observation-slice) pairs.
//
// Contract:
//  - Append-only: committed rounds and observations are never mutated, so a
//    consumer attached after N rounds can replay exactly what a consumer
//    attached before round 0 saw.
//  - Seed-deterministic: the store adds no nondeterminism of its own — its
//    contents are a pure function of the resolver's seed and the service,
//    which is what the sweep determinism tests pin (identical stores across
//    repeated seeds and any dispatcher worker count).
//  - Per-round snapshots: SnapshotAt(i) reports the cumulative
//    (rounds, observations, queries) totals at the boundary after round i.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/observation.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace lbsagg {
namespace engine {

// Cumulative totals at a round boundary.
struct EvidenceSnapshot {
  uint64_t rounds = 0;
  uint64_t observations = 0;
  uint64_t queries = 0;
};

struct EvidenceStoreOptions {
  // Metric plane for the engine.evidence.* counters; null lands on
  // obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;
  // When set, each committed round emits an "engine.evidence.round" span
  // covering BeginRound → EndRound.
  obs::Tracer* tracer = nullptr;
};

class EvidenceStore {
 public:
  explicit EvidenceStore(EvidenceStoreOptions options = {});

  // Opens a round at the sampled query point. Exactly one round may be open
  // at a time.
  void BeginRound(const Vec2& sample_point);

  // Appends one observation to the open round.
  void Append(const Observation& observation);

  // Commits the open round; `queries_after` is the client's cumulative
  // interface-query counter at the boundary. Returns the committed round.
  const EvidenceRound& EndRound(uint64_t queries_after);

  size_t num_rounds() const { return rounds_.size(); }
  size_t num_observations() const { return log_.size(); }
  const EvidenceRound& round(size_t i) const { return rounds_[i]; }

  // The contiguous observation slice of a committed round (valid for
  // `r.num_observations` entries; null when the round produced none).
  const Observation* observations(const EvidenceRound& r) const {
    return r.num_observations == 0 ? nullptr : log_.data() + r.first_observation;
  }

  EvidenceSnapshot Snapshot() const;
  EvidenceSnapshot SnapshotAt(size_t round_index) const;

  // {"rounds":N,"observations":M,"queries":Q} — embedded in run reports as
  // the `engine` section.
  std::string ToJson() const;

 private:
  std::vector<EvidenceRound> rounds_;
  std::vector<Observation> log_;
  bool in_round_ = false;
  EvidenceRound open_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef observations_counter_;
  obs::Tracer* tracer_ = nullptr;
  double round_start_us_ = 0.0;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_EVIDENCE_STORE_H_
