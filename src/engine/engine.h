#ifndef LBSAGG_ENGINE_ENGINE_H_
#define LBSAGG_ENGINE_ENGINE_H_

// The estimation engine (DESIGN.md §4.9): wires one acquisition-layer
// resolver, the append-only evidence store, and N aggregation-layer
// consumers into a single query-budget loop.
//
//   engine::LrCellResolver resolver(&client, &sampler, options);
//   engine::EstimationEngine engine(&resolver);
//   auto* count = engine.AddAggregate(AggregateSpec::Count());
//   auto* sum   = engine.AddAggregate(AggregateSpec::Sum(col, "SUM(x)"));
//   auto* avg   = engine.AddAggregate(AggregateSpec::Avg(col, "AVG(x)"));
//   while (engine.queries_used() < budget) engine.Step();
//
// Every Step spends interface queries once and every registered aggregate
// folds the same observations — the paper's point that one HT evidence
// stream answers any aggregate (§2.3), turned into architecture.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "engine/aggregate_query.h"
#include "engine/cell_resolver.h"
#include "engine/evidence_store.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace lbsagg {
namespace engine {

struct EngineOptions {
  // Metric plane for the engine.* counters (and the evidence store's
  // engine.evidence.* counters); null lands on
  // obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;
  // When set, each Step emits an "engine.round" span (with the resolver's
  // "estimator.round" tree and the store's "engine.evidence.round" span
  // nested inside it).
  obs::Tracer* tracer = nullptr;
};

class EstimationEngine {
 public:
  // `resolver` must outlive the engine.
  explicit EstimationEngine(CellResolver* resolver, EngineOptions options = {});

  // Registers one aggregate consumer and returns it (owned by the engine;
  // valid until the engine is destroyed). A consumer registered after
  // rounds have already run replays the existing evidence log first, so its
  // trace covers the whole run — but it only sees the observations the
  // demand *at acquisition time* asked for; tuples every earlier aggregate
  // skipped were never resolved and cannot be replayed.
  AggregateQuery* AddAggregate(const AggregateSpec& spec);

  // One sampling round: the resolver commits one evidence round and every
  // registered aggregate folds it. Requires at least one aggregate.
  void Step();

  // Attaches the durability sink to the evidence store (engine/log/): every
  // round committed from now on is observed by `sink`. Null detaches.
  void AttachSink(EvidenceSink* sink) { store_.set_sink(sink); }

  // Recovery hook: refills the evidence store from a recovered source
  // (sink not notified — the rounds came from the durable log) and folds
  // the restored rounds into any already-registered aggregates, exactly as
  // AddAggregate's replay does for consumers registered later. Requires an
  // empty store; call before or after AddAggregate, not after Step.
  void RestoreEvidence(const EvidenceSource& source);

  uint64_t queries_used() const { return resolver_->queries_used(); }
  const EvidenceStore& evidence() const { return store_; }
  CellResolver* resolver() { return resolver_; }
  const CellResolver* resolver() const { return resolver_; }

  size_t num_aggregates() const { return queries_.size(); }
  AggregateQuery* aggregate(size_t i) { return queries_[i].get(); }
  const AggregateQuery* aggregate(size_t i) const { return queries_[i].get(); }

  // {"resolver":{...},"evidence":{...},"aggregates":N} — the resolver's own
  // diagnostics plus the evidence snapshot, for run reports.
  std::string diagnostics_json() const;

 private:
  void RebuildDemand();

  CellResolver* resolver_;
  EvidenceStore store_;
  std::vector<std::unique_ptr<AggregateQuery>> queries_;
  EvidenceDemand demand_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef replayed_rounds_counter_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_ENGINE_H_
