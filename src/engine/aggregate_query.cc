#include "engine/aggregate_query.h"

#include "util/check.h"

namespace lbsagg {
namespace engine {

AggregateQuery::AggregateQuery(const AggregateSpec& spec,
                               const LbsClient* client)
    : spec_(spec), client_(client) {
  LBSAGG_CHECK(client_ != nullptr);
}

void AggregateQuery::FoldObservation(const Observation& obs, double* numerator,
                                     double* denominator) const {
  // Position conditions: LR/NNO observations carry the returned
  // coordinates; LNR observations carry the localized position (§4.3) or
  // none when localization failed — which contributes nothing, exactly as
  // the pre-engine estimators skipped it.
  if (spec_.position_condition &&
      (!obs.has_location || !spec_.position_condition(obs.location))) {
    return;
  }
  const double numerator_value = spec_.NumeratorValue(*client_, obs.tuple_id);
  const double denominator_value =
      spec_.DenominatorValue(*client_, obs.tuple_id);

  switch (obs.weight_form) {
    case WeightForm::kInverseProbability:
      // LR gates (Algorithm 5): a tuple with an all-zero contribution, or a
      // zero COUNT/SUM numerator, adds exactly nothing.
      if (numerator_value == 0.0 && denominator_value == 0.0) return;
      if (numerator_value == 0.0 &&
          spec_.kind != AggregateSpec::Kind::kAvg) {
        return;
      }
      *numerator += numerator_value * obs.weight;
      *denominator += denominator_value * obs.weight;
      return;
    case WeightForm::kProbability:
      // LNR arithmetic is value / p — not value * (1/p); the two differ in
      // the last ulp and the engine's contract is bit-identical traces.
      *numerator += numerator_value / obs.weight;
      *denominator += denominator_value / obs.weight;
      return;
  }
}

void AggregateQuery::ConsumeRound(const EvidenceRound& round,
                                  const Observation* observations,
                                  size_t num_observations) {
  double round_numerator = 0.0;
  double round_denominator = 0.0;
  for (size_t i = 0; i < num_observations; ++i) {
    FoldObservation(observations[i], &round_numerator, &round_denominator);
  }
  numerator_.Add(round_numerator);
  denominator_.Add(round_denominator);
  trace_.push_back({round.queries_after, Estimate()});
#ifndef LBSAGG_OBS_DISABLED
  // Convergence telemetry is pure observation (derived from the same state
  // the trace captures); it compiles out with the rest of the plane.
  convergence_.push_back(
      {round.queries_after, trace_.back().estimate, ConfidenceHalfWidth()});
#endif
}

double AggregateQuery::Estimate() const {
  if (numerator_.count() == 0) return 0.0;
  if (spec_.kind == AggregateSpec::Kind::kAvg) {
    if (denominator_.mean() == 0.0) return 0.0;
    return numerator_.mean() / denominator_.mean();
  }
  return numerator_.mean();
}

double AggregateQuery::ConfidenceHalfWidth(double z) const {
  return numerator_.ConfidenceHalfWidth(z);
}

}  // namespace engine
}  // namespace lbsagg
