#include "engine/evidence_store.h"

#include <sstream>

#include "util/check.h"

namespace lbsagg {
namespace engine {

EvidenceStore::EvidenceStore(EvidenceStoreOptions options)
    : rounds_counter_(
          obs::GetCounter(options.registry, "engine.evidence.rounds")),
      observations_counter_(
          obs::GetCounter(options.registry, "engine.evidence.observations")),
      tracer_(options.tracer) {}

void EvidenceStore::BeginRound(const Vec2& sample_point) {
  LBSAGG_CHECK(!in_round_) << "BeginRound with a round already open";
  in_round_ = true;
  open_ = EvidenceRound{};
  open_.round = rounds_.size();
  open_.sample_point = sample_point;
  open_.first_observation = log_.size();
  if (tracer_ != nullptr) round_start_us_ = tracer_->NowUs();
}

void EvidenceStore::Append(const Observation& observation) {
  LBSAGG_CHECK(in_round_) << "Append outside BeginRound/EndRound";
  log_.push_back(observation);
  ++open_.num_observations;
  observations_counter_.Add(1);
}

const EvidenceRound& EvidenceStore::EndRound(uint64_t queries_after) {
  LBSAGG_CHECK(in_round_) << "EndRound without BeginRound";
  in_round_ = false;
  open_.queries_after = queries_after;
  rounds_.push_back(open_);
  rounds_counter_.Add(1);
  if (tracer_ != nullptr) {
    tracer_->AddComplete("engine.evidence.round", "engine", round_start_us_,
                         tracer_->NowUs() - round_start_us_);
  }
  return rounds_.back();
}

EvidenceSnapshot EvidenceStore::Snapshot() const {
  EvidenceSnapshot snapshot;
  snapshot.rounds = rounds_.size();
  snapshot.observations = log_.size();
  snapshot.queries = rounds_.empty() ? 0 : rounds_.back().queries_after;
  return snapshot;
}

EvidenceSnapshot EvidenceStore::SnapshotAt(size_t round_index) const {
  LBSAGG_CHECK_LT(round_index, rounds_.size());
  const EvidenceRound& r = rounds_[round_index];
  EvidenceSnapshot snapshot;
  snapshot.rounds = round_index + 1;
  snapshot.observations = r.first_observation + r.num_observations;
  snapshot.queries = r.queries_after;
  return snapshot;
}

std::string EvidenceStore::ToJson() const {
  const EvidenceSnapshot s = Snapshot();
  std::ostringstream out;
  out << "{\"rounds\":" << s.rounds << ",\"observations\":" << s.observations
      << ",\"queries\":" << s.queries << "}";
  return out.str();
}

}  // namespace engine
}  // namespace lbsagg
