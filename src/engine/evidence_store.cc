#include "engine/evidence_store.h"

#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace engine {

EvidenceStore::EvidenceStore(EvidenceStoreOptions options)
    : rounds_counter_(
          obs::GetCounter(options.registry, "engine.evidence.rounds")),
      observations_counter_(
          obs::GetCounter(options.registry, "engine.evidence.observations")),
      tracer_(options.tracer) {}

void EvidenceStore::BeginRound(const Vec2& sample_point) {
  LBSAGG_CHECK(!in_round_) << "BeginRound with a round already open";
  in_round_ = true;
  open_ = EvidenceRound{};
  open_.round = rounds_.size();
  open_.sample_point = sample_point;
  open_.first_observation = log_.size();
  if (tracer_ != nullptr) round_start_us_ = tracer_->NowUs();
  if (sink_ != nullptr) sink_->OnBeginRound(open_.round, sample_point);
}

void EvidenceStore::Append(const Observation& observation) {
  LBSAGG_CHECK(in_round_) << "Append outside BeginRound/EndRound";
  log_.push_back(observation);
  ++open_.num_observations;
  observations_counter_.Add(1);
  if (sink_ != nullptr) sink_->OnAppend(open_.round, observation);
}

const EvidenceRound& EvidenceStore::EndRound(uint64_t queries_after) {
  LBSAGG_CHECK(in_round_) << "EndRound without BeginRound";
  in_round_ = false;
  open_.queries_after = queries_after;
  rounds_.push_back(open_);
  rounds_counter_.Add(1);
  if (tracer_ != nullptr) {
    tracer_->AddComplete("engine.evidence.round", "engine", round_start_us_,
                         tracer_->NowUs() - round_start_us_);
  }
  if (sink_ != nullptr) sink_->OnEndRound(rounds_.back());
  return rounds_.back();
}

void EvidenceStore::RestoreRound(const Vec2& sample_point,
                                 uint64_t queries_after,
                                 const Observation* observations, size_t n) {
  LBSAGG_CHECK(!in_round_) << "RestoreRound with a round open";
  EvidenceRound round;
  round.round = rounds_.size();
  round.sample_point = sample_point;
  round.queries_after = queries_after;
  round.first_observation = log_.size();
  round.num_observations = n;
  log_.insert(log_.end(), observations, observations + n);
  rounds_.push_back(round);
  rounds_counter_.Add(1);
  observations_counter_.Add(n);
}

void EvidenceStore::RestoreFrom(const EvidenceSource& source) {
  LBSAGG_CHECK(rounds_.empty() && log_.empty() && !in_round_)
      << "RestoreFrom requires an empty store";
  for (size_t i = 0; i < source.NumRounds(); ++i) {
    const EvidenceRound& round = source.Round(i);
    RestoreRound(round.sample_point, round.queries_after,
                 source.Observations(round), round.num_observations);
  }
}

EvidenceSnapshot EvidenceStore::Snapshot() const {
  EvidenceSnapshot snapshot;
  snapshot.rounds = rounds_.size();
  snapshot.observations = log_.size();
  snapshot.queries = rounds_.empty() ? 0 : rounds_.back().queries_after;
  return snapshot;
}

EvidenceSnapshot EvidenceStore::SnapshotAt(size_t round_index) const {
  LBSAGG_CHECK_LT(round_index, rounds_.size());
  const EvidenceRound& r = rounds_[round_index];
  EvidenceSnapshot snapshot;
  snapshot.rounds = round_index + 1;
  snapshot.observations = r.first_observation + r.num_observations;
  snapshot.queries = r.queries_after;
  return snapshot;
}

std::string EvidenceStore::ToJson() const {
  const EvidenceSnapshot s = Snapshot();
  JsonWriter json;
  json.BeginObject()
      .KV("rounds", s.rounds)
      .KV("observations", s.observations)
      .KV("queries", s.queries)
      .EndObject();
  return json.TakeString();
}

}  // namespace engine
}  // namespace lbsagg
