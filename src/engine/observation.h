#ifndef LBSAGG_ENGINE_OBSERVATION_H_
#define LBSAGG_ENGINE_OBSERVATION_H_

// The unit of evidence the acquisition layer produces and the aggregation
// layer consumes (DESIGN.md §4.9). One sampling round resolves zero or more
// tuples into (tuple, weight, location, cost) observations; every
// AggregateQuery folds the same observations into its own Horvitz–Thompson
// estimate, so N aggregates ride one interface budget.

#include <cstddef>
#include <cstdint>

#include "geometry/vec2.h"

namespace lbsagg {
namespace engine {

// How a tuple's resolved weight turns Q(t) into an HT contribution. The two
// forms are kept distinct — rather than normalizing to one — because
// floating-point `value * (1/p)` and `value / p` differ in the last ulp, and
// the engine's contract is bit-identical traces with the pre-engine
// estimators.
enum class WeightForm : uint8_t {
  // weight is an (unbiased estimate of the) inverse inclusion probability;
  // contribution = value * weight. Produced by the LR cell computer and the
  // NNO probe baseline.
  kInverseProbability,
  // weight is the inclusion probability itself; contribution =
  // value / weight. Produced by the LNR cell inference.
  kProbability,
};

// One resolved tuple. Attribute values are NOT materialized here: consumers
// evaluate their own predicate/value column through the client's returned
// attributes (free — no interface queries), which keeps the evidence log
// aggregate-agnostic.
struct Observation {
  int tuple_id = -1;
  int rank = 0;  // 1-based rank in the result page (0 = unknown)
  int h = 1;     // top-h cell order backing the weight
  // Returned coordinates (LR/NNO) or localized-to-precision coordinates
  // (LNR, §4.3). has_location is false when the interface hides locations
  // and no localization was demanded (or it failed to converge).
  Vec2 location{};
  bool has_location = false;
  WeightForm weight_form = WeightForm::kInverseProbability;
  double weight = 0.0;
  bool exact = true;     // exact cell (Theorem 1) vs Monte-Carlo/heuristic
  uint64_t cost = 0;     // interface queries spent resolving this observation
};

// One sampling round in the evidence log: the sampled query point plus the
// contiguous slice of observations it produced. `queries_after` is the
// client's cumulative interface-query counter at the round boundary — the
// x-axis of every trace built from this evidence.
struct EvidenceRound {
  uint64_t round = 0;  // 0-based index in the log
  Vec2 sample_point{};
  uint64_t queries_after = 0;
  size_t first_observation = 0;
  size_t num_observations = 0;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_OBSERVATION_H_
