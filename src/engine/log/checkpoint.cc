#include "engine/log/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "engine/log/wal_format.h"
#include "util/binary_io.h"

namespace lbsagg {
namespace engine {

namespace fs = std::filesystem;

namespace {

constexpr size_t kCheckpointHeaderBytes = 16;  // magic + len + crc
constexpr uint64_t kMaxCheckpointBytes = 1u << 28;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

bool SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t TraceFingerprint(const std::vector<TracePoint>& trace) {
  uint64_t h = MixHash(0, trace.size());
  for (const TracePoint& tp : trace) {
    h = MixHash(h, tp.queries);
    h = MixHash(h, DoubleBits(tp.estimate));
  }
  return h;
}

std::string EncodeCheckpoint(const CheckpointData& data) {
  std::string payload;
  BinaryWriter w(&payload);
  w.PutU32(kCheckpointVersion);
  w.PutU64(data.round);
  w.PutU64(data.observations);
  w.PutU64(data.queries_used);
  w.PutU64(data.memo_hash);
  w.PutString(data.resolver_name);
  w.PutString(data.resolver_state);
  w.PutU32(static_cast<uint32_t>(data.aggregates.size()));
  for (const AggregateCheckpoint& agg : data.aggregates) {
    w.PutString(agg.name);
    w.PutU64(agg.trace_hash);
    w.PutF64(agg.estimate);
  }

  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  BinaryWriter header(&out);
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  out.append(payload);
  return out;
}

bool DecodeCheckpoint(std::string_view bytes, CheckpointData* data) {
  if (bytes.size() < kCheckpointHeaderBytes) return false;
  if (std::string_view(bytes.data(), sizeof(kCheckpointMagic)) !=
      std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic))) {
    return false;
  }
  BinaryReader header(bytes.data() + sizeof(kCheckpointMagic), 8);
  uint32_t len = 0, crc = 0;
  header.GetU32(&len);
  header.GetU32(&crc);
  if (len != bytes.size() - kCheckpointHeaderBytes) return false;
  const std::string_view payload(bytes.data() + kCheckpointHeaderBytes, len);
  if (Crc32(payload) != crc) return false;

  BinaryReader r(payload);
  uint32_t version = 0;
  if (!r.GetU32(&version) || version != kCheckpointVersion) return false;
  CheckpointData parsed;
  uint32_t num_aggregates = 0;
  if (!r.GetU64(&parsed.round) || !r.GetU64(&parsed.observations) ||
      !r.GetU64(&parsed.queries_used) || !r.GetU64(&parsed.memo_hash) ||
      !r.GetString(&parsed.resolver_name) ||
      !r.GetString(&parsed.resolver_state) || !r.GetU32(&num_aggregates)) {
    return false;
  }
  parsed.aggregates.resize(num_aggregates);
  for (AggregateCheckpoint& agg : parsed.aggregates) {
    if (!r.GetString(&agg.name) || !r.GetU64(&agg.trace_hash) ||
        !r.GetF64(&agg.estimate)) {
      return false;
    }
  }
  if (r.remaining() != 0) return false;
  *data = std::move(parsed);
  return true;
}

bool WriteCheckpointFile(const std::string& dir, const CheckpointData& data,
                         std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *error = "create " + dir + ": " + ec.message();
    return false;
  }
  const std::string bytes = EncodeCheckpoint(data);
  const fs::path final_path = fs::path(dir) / CheckpointName(data.round);
  const fs::path tmp_path = final_path.string() + ".tmp";

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = ErrnoMessage("create", tmp_path.string());
    return false;
  }
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = ErrnoMessage("write", tmp_path.string());
      ::close(fd);
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    *error = ErrnoMessage("fsync", tmp_path.string());
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    *error = ErrnoMessage("rename", tmp_path.string());
    return false;
  }
  if (!SyncDirectory(dir)) {
    *error = ErrnoMessage("fsync dir", dir);
    return false;
  }
  return true;
}

bool ReadCheckpointFile(const std::string& path, CheckpointData* data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad() || bytes.size() > kMaxCheckpointBytes) return false;
  return DecodeCheckpoint(bytes, data);
}

std::vector<CheckpointScanEntry> ScanCheckpoints(const std::string& dir) {
  std::vector<CheckpointScanEntry> entries;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return entries;
  for (const fs::directory_entry& file : fs::directory_iterator(dir, ec)) {
    uint64_t round = 0;
    if (!ParseCheckpointName(file.path().filename().string(), &round)) {
      continue;
    }
    CheckpointScanEntry entry;
    entry.path = file.path().string();
    entry.round = round;
    entry.valid =
        ReadCheckpointFile(entry.path, &entry.data) && entry.data.round == round;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointScanEntry& a, const CheckpointScanEntry& b) {
              return a.round < b.round;
            });
  return entries;
}

}  // namespace engine
}  // namespace lbsagg
