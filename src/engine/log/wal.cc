#include "engine/log/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

namespace lbsagg {
namespace engine {

namespace fs = std::filesystem;

namespace {

// A single evidence record is a few dozen bytes; anything claiming to be
// larger than this is tail garbage, not a record.
constexpr uint64_t kMaxPayloadBytes = 1u << 24;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

bool SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool ReadFileBytes(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(bytes);
  return true;
}

// Segment files of `dir` sorted by start_round. Non-segment files (e.g.
// checkpoints) are ignored.
std::vector<std::pair<uint64_t, fs::path>> ListSegments(const std::string& dir,
                                                        std::string* error) {
  std::vector<std::pair<uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start_round = 0;
    if (ParseWalSegmentName(entry.path().filename().string(), &start_round)) {
      segments.emplace_back(start_round, entry.path());
    }
  }
  if (ec) *error = "list " + dir + ": " + ec.message();
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone:
      return "none";
    case FsyncMode::kRound:
      return "round";
    case FsyncMode::kEvery:
      return "every";
  }
  return "unknown";
}

// ---- WalWriter ----

WalWriter::WalWriter(std::string dir, WalWriterOptions options,
                     uint64_t next_round)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    Fail("create " + dir_ + ": " + ec.message());
    return;
  }
  OpenForAppend(next_round);
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::OpenForAppend(uint64_t next_round) {
  std::string list_error;
  const auto segments = ListSegments(dir_, &list_error);
  if (!list_error.empty()) {
    Fail(list_error);
    return;
  }
  if (segments.empty()) {
    StartSegment(next_round);
    return;
  }
  const fs::path& path = segments.back().second;
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    Fail(ErrnoMessage("open", path.string()));
    return;
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    Fail(ErrnoMessage("lseek", path.string()));
    return;
  }
  segment_path_ = path.string();
  segment_bytes_ = static_cast<uint64_t>(size);
  segment_persisted_ = segment_bytes_;
  synced_bytes_ = segment_bytes_;
  dirty_ = false;
}

void WalWriter::StartSegment(uint64_t start_round) {
  const fs::path path = fs::path(dir_) / WalSegmentName(start_round);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd_ < 0) {
    Fail(ErrnoMessage("create", path.string()));
    return;
  }
  segment_path_ = path.string();
  segment_bytes_ = 0;
  segment_persisted_ = 0;
  synced_bytes_ = 0;
  dirty_ = false;
  if (!SyncDirectory(dir_)) {
    Fail(ErrnoMessage("fsync dir", dir_));
    return;
  }
  const std::string header = EncodeWalHeader(start_round);
  WriteBytes(header);
  stats_.bytes += header.size();
}

void WalWriter::RotateIfNeeded(uint64_t next_round) {
  if (fd_ < 0 || segment_bytes_ < options_.segment_bytes) return;
  Sync();
  if (!ok()) return;
  ::close(fd_);
  fd_ = -1;
  StartSegment(next_round);
  stats_.rotations += 1;
}

void WalWriter::WriteBytes(const std::string& bytes) {
  if (!ok() || fd_ < 0) return;
  uint64_t allow = bytes.size();
  if (options_.failpoint.drop_after_bytes > 0) {
    const uint64_t budget = options_.failpoint.drop_after_bytes;
    allow = persisted_total_ >= budget
                ? 0
                : std::min<uint64_t>(allow, budget - persisted_total_);
  }
  const char* p = bytes.data();
  uint64_t left = allow;
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail(ErrnoMessage("write", segment_path_));
      return;
    }
    p += n;
    left -= static_cast<uint64_t>(n);
  }
  persisted_total_ += allow;
  segment_persisted_ += allow;
  segment_bytes_ += bytes.size();
  if (allow > 0) dirty_ = true;
}

void WalWriter::AppendRecord(const std::string& payload) {
  if (!ok()) return;
  const std::string framed = FrameWalRecord(payload);
  WriteBytes(framed);
  if (!ok()) return;
  stats_.records += 1;
  stats_.bytes += framed.size();
  if (options_.fsync == FsyncMode::kEvery) Sync();
}

void WalWriter::AppendBeginRound(uint64_t round, const Vec2& sample_point) {
  if (!ok()) return;
  RotateIfNeeded(round);
  if (!ok()) return;
  std::string payload;
  EncodeBeginRound(WalBeginRound{round, sample_point}, &payload);
  AppendRecord(payload);
}

void WalWriter::AppendObservation(const Observation& observation) {
  if (!ok()) return;
  std::string payload;
  EncodeObservation(observation, &payload);
  AppendRecord(payload);
}

void WalWriter::AppendEndRound(const EvidenceRound& round) {
  if (!ok()) return;
  std::string payload;
  EncodeEndRound(WalEndRound{round.round, round.queries_after,
                             round.num_observations},
                 &payload);
  AppendRecord(payload);
  if (options_.fsync == FsyncMode::kRound) Sync();
}

void WalWriter::Sync() {
  if (dirty_) DoFsync();
}

void WalWriter::DoFsync() {
  if (!ok() || fd_ < 0) return;
  stats_.fsyncs += 1;
  if (options_.failpoint.fail_fsync_at != 0 &&
      stats_.fsyncs == options_.failpoint.fail_fsync_at) {
    // Simulated device failure: everything since the last successful fsync
    // is dropped from the file, as a lost page cache would drop it.
    (void)::ftruncate(fd_, static_cast<off_t>(synced_bytes_));
    segment_persisted_ = synced_bytes_;
    Fail("injected fsync failure on " + segment_path_);
    return;
  }
  if (::fsync(fd_) != 0) {
    Fail(ErrnoMessage("fsync", segment_path_));
    return;
  }
  synced_bytes_ = segment_persisted_;
  dirty_ = false;
}

void WalWriter::Close() {
  if (fd_ < 0) return;
  Sync();
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::Fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

// ---- WalReplay ----

void WalReplay::AppendRound(const EvidenceRound& round,
                            std::vector<Observation> observations) {
  EvidenceRound r = round;
  r.round = rounds_.size();
  r.first_observation = log_.size();
  r.num_observations = observations.size();
  rounds_.push_back(r);
  log_.insert(log_.end(), observations.begin(), observations.end());
}

void WalReplay::TruncateTo(size_t n) {
  if (n >= rounds_.size()) return;
  log_.resize(rounds_[n].first_observation);
  rounds_.resize(n);
}

// ---- ReadWal ----

WalReadResult ReadWal(const std::string& dir, bool keep_records) {
  WalReadResult result;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return result;  // fresh run: empty log
  std::string list_error;
  const auto segment_files = ListSegments(dir, &list_error);
  if (!list_error.empty()) {
    result.error = list_error;
    return result;
  }

  // Scan state: `stop` latches at the first damaged byte — every byte after
  // it (across segments) is tail damage. A round open at a stop point (or
  // at the end of the log) began but never committed.
  bool stop = false;
  bool in_round = false;
  WalBeginRound open_begin;
  std::vector<Observation> open_observations;
  std::pair<size_t, uint64_t> open_offset{0, 0};

  for (size_t seg = 0; seg < segment_files.size(); ++seg) {
    WalSegmentInfo info;
    info.path = segment_files[seg].second.string();
    info.start_round = segment_files[seg].first;
    std::string bytes;
    if (!ReadFileBytes(segment_files[seg].second, &bytes)) {
      result.error = "unreadable segment " + info.path;
      return result;
    }
    info.file_bytes = bytes.size();
    if (stop) {
      result.torn_bytes += bytes.size();
      result.segments.push_back(info);
      continue;
    }

    // A segment is usable only when its header checks out AND it chains:
    // start_round must equal the rounds committed so far, and no round may
    // straddle the boundary (the writer rotates only between rounds).
    uint64_t header_round = 0;
    if (!DecodeWalHeader(bytes, &header_round) ||
        header_round != info.start_round ||
        header_round != result.evidence.NumRounds() || in_round) {
      stop = true;
      if (in_round) result.torn_round = true;
      in_round = false;
      result.torn_bytes += bytes.size();
      result.segments.push_back(info);
      continue;
    }
    result.valid_segments = seg + 1;
    result.commit_segment = seg;
    result.commit_offset = kWalHeaderBytes;

    uint64_t off = kWalHeaderBytes;
    info.valid_bytes = off;
    while (off < bytes.size()) {
      // Frame prefix + payload must fit and the payload crc must hold.
      if (off + kWalFrameBytes > bytes.size()) break;
      BinaryReader frame(bytes.data() + off, kWalFrameBytes);
      uint32_t len = 0, crc = 0;
      frame.GetU32(&len);
      frame.GetU32(&crc);
      if (len == 0 || len > kMaxPayloadBytes ||
          off + kWalFrameBytes + len > bytes.size()) {
        break;
      }
      const std::string_view payload(bytes.data() + off + kWalFrameBytes, len);
      if (Crc32(payload) != crc) break;

      BinaryReader r(payload);
      uint8_t type_byte = 0;
      r.GetU8(&type_byte);
      WalRecord record;
      record.segment = seg;
      record.offset = off;
      bool protocol_ok = false;
      switch (type_byte) {
        case static_cast<uint8_t>(WalRecordType::kBeginRound): {
          record.type = WalRecordType::kBeginRound;
          protocol_ok = DecodeBeginRound(&r, &record.begin) &&
                        r.remaining() == 0 && !in_round &&
                        record.begin.round == result.evidence.NumRounds();
          if (protocol_ok) {
            open_begin = record.begin;
            open_offset = {seg, off};
            open_observations.clear();
            in_round = true;
          }
          break;
        }
        case static_cast<uint8_t>(WalRecordType::kObservation): {
          record.type = WalRecordType::kObservation;
          protocol_ok = DecodeObservation(&r, &record.observation) &&
                        r.remaining() == 0 && in_round;
          if (protocol_ok) open_observations.push_back(record.observation);
          break;
        }
        case static_cast<uint8_t>(WalRecordType::kEndRound): {
          record.type = WalRecordType::kEndRound;
          protocol_ok = DecodeEndRound(&r, &record.end) && r.remaining() == 0 &&
                        in_round && record.end.round == open_begin.round &&
                        record.end.num_observations == open_observations.size();
          if (protocol_ok) {
            result.round_offsets.push_back(open_offset);
            EvidenceRound committed;
            committed.sample_point = open_begin.sample_point;
            committed.queries_after = record.end.queries_after;
            result.evidence.AppendRound(committed,
                                        std::move(open_observations));
            open_observations = {};
            in_round = false;
            result.commit_segment = seg;
            result.commit_offset = off + kWalFrameBytes + len;
          }
          break;
        }
        default:
          break;
      }
      if (!protocol_ok) break;
      if (keep_records) result.records.push_back(record);
      info.records += 1;
      off += kWalFrameBytes + len;
      info.valid_bytes = off;
    }
    if (off < bytes.size()) {
      result.torn_bytes += bytes.size() - off;
      stop = true;
    }
    result.segments.push_back(info);
  }
  if (in_round) result.torn_round = true;
  return result;
}

// ---- TruncateWal ----

bool TruncateWal(const std::string& dir, uint64_t rounds, std::string* error) {
  const WalReadResult read = ReadWal(dir);
  if (!read.error.empty()) {
    *error = read.error;
    return false;
  }
  if (rounds > read.evidence.NumRounds()) {
    *error = "cannot keep " + std::to_string(rounds) + " rounds, log has " +
             std::to_string(read.evidence.NumRounds());
    return false;
  }
  if (read.segments.empty()) return true;

  size_t cut_segment = 0;
  uint64_t cut_offset = 0;
  bool keep_any = read.valid_segments > 0;
  if (keep_any) {
    if (rounds < read.evidence.NumRounds()) {
      cut_segment = read.round_offsets[rounds].first;
      cut_offset = read.round_offsets[rounds].second;
    } else {
      cut_segment = read.commit_segment;
      cut_offset = read.commit_offset;
    }
  }

  std::error_code ec;
  for (size_t i = read.segments.size(); i-- > 0;) {
    const WalSegmentInfo& info = read.segments[i];
    if (keep_any && i < cut_segment) break;
    if (keep_any && i == cut_segment) {
      if (info.file_bytes > cut_offset &&
          ::truncate(info.path.c_str(), static_cast<off_t>(cut_offset)) != 0) {
        *error = ErrnoMessage("truncate", info.path);
        return false;
      }
      break;
    }
    fs::remove(info.path, ec);
    if (ec) {
      *error = "remove " + info.path + ": " + ec.message();
      return false;
    }
  }
  if (!SyncDirectory(dir)) {
    *error = ErrnoMessage("fsync dir", dir);
    return false;
  }
  return true;
}

}  // namespace engine
}  // namespace lbsagg
