#ifndef LBSAGG_ENGINE_LOG_DURABLE_LOG_H_
#define LBSAGG_ENGINE_LOG_DURABLE_LOG_H_

// The durable evidence log (DESIGN.md §4.14): glues the WAL writer, the
// round-aligned checkpoints, and the engine's evidence seam into a
// kill-anywhere / resume-bit-identically contract.
//
// Writing side — attach a DurableEvidenceLog to a live engine:
//
//   engine::DurableEvidenceLog wal({.dir = wal_dir}, &engine, &client);
//   while (engine.queries_used() < budget) {
//     engine.Step();
//     wal.MaybeCheckpoint();
//   }
//   wal.Close();  // final checkpoint; also done by the destructor
//
// Reading side — resume after a crash (same process or a new one):
//
//   engine::RecoveredRun rec = engine::RecoverDurableRun(wal_dir);
//   // build sampler/client/resolver/engine exactly as the original run did
//   engine.RestoreEvidence(rec.evidence);     // replay rounds [0, R)
//   engine.AddAggregate(spec);                // same specs, same order
//   std::string err = engine::ApplyCheckpoint(rec, &engine, &client);
//   // err empty → attach a new DurableEvidenceLog and keep stepping
//
// Why this is bit-identical: a checkpoint at round R captures the resolver
// state *after* R committed rounds; recovery truncates the WAL back to the
// R-round boundary (dropping any committed-but-post-checkpoint rounds, the
// torn tail, and any uncommitted round), replays [0, R) through the
// engine's late-consumer machinery (folds are a pure function of the
// evidence), restores the resolver/client state, and re-executes rounds
// R, R+1, ... — which are a pure function of (resolver state, service) and
// therefore identical to the uninterrupted run's.

#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "engine/log/checkpoint.h"
#include "engine/log/wal.h"
#include "lbs/client.h"

namespace lbsagg {
namespace engine {

struct DurableLogOptions {
  std::string dir;  // WAL directory (segments + checkpoints); required
  // Checkpoint every N committed rounds (0 = only at Close). The WAL makes
  // *evidence* durable every round; checkpoints only bound how many rounds
  // recovery must re-execute.
  uint64_t checkpoint_every_rounds = 64;
  uint64_t segment_bytes = 4u << 20;
  FsyncMode fsync = FsyncMode::kRound;
  WalFailPoint failpoint;
};

// EvidenceSink that mirrors every committed protocol event into the WAL and
// writes round-aligned checkpoints. Attaches itself to the engine's store
// on construction (detaches on Close/destruction); the engine and client
// must outlive it.
class DurableEvidenceLog : public EvidenceSink {
 public:
  DurableEvidenceLog(DurableLogOptions options, EstimationEngine* engine,
                     LbsClient* client);
  ~DurableEvidenceLog() override;

  DurableEvidenceLog(const DurableEvidenceLog&) = delete;
  DurableEvidenceLog& operator=(const DurableEvidenceLog&) = delete;

  bool ok() const { return error_.empty() && writer_->ok(); }
  std::string error() const {
    return !error_.empty() ? error_ : writer_->error();
  }

  // EvidenceSink — called by the store as the resolver commits rounds.
  void OnBeginRound(uint64_t round, const Vec2& sample_point) override;
  void OnAppend(uint64_t round, const Observation& observation) override;
  void OnEndRound(const EvidenceRound& round) override;

  // Round-aligned checkpoint policy: call between engine Steps (never from
  // inside the sink callbacks — aggregates fold *after* EndRound commits,
  // and a checkpoint must capture post-fold state).
  void MaybeCheckpoint();
  void Checkpoint();

  // Final checkpoint + sync + detach from the engine. Idempotent.
  void Close();

  const WalWriterStats& wal_stats() const { return writer_->stats(); }
  uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  DurableLogOptions options_;
  EstimationEngine* engine_;
  LbsClient* client_;
  std::unique_ptr<WalWriter> writer_;
  uint64_t rounds_since_checkpoint_ = 0;
  uint64_t checkpoints_written_ = 0;
  bool closed_ = false;
  std::string error_;
};

// Builds the checkpoint record for the engine/client pair's current state
// (exposed for the inspector and tests; DurableEvidenceLog uses it too).
CheckpointData BuildCheckpoint(const EstimationEngine& engine,
                               const LbsClient& client);

// What RecoverDurableRun hands back: the state of the directory after
// disk-level recovery (torn tail truncated, WAL rewound to the chosen
// checkpoint's round boundary, stale/corrupt checkpoints deleted).
struct RecoveredRun {
  std::string error;  // non-empty → the directory is unusable

  // The chosen checkpoint. found_checkpoint=false means none was usable:
  // checkpoint is all-defaults (round 0) and the run restarts from scratch
  // — still bit-identical, the WAL was truncated to zero rounds.
  CheckpointData checkpoint;
  bool found_checkpoint = false;

  // Evidence of rounds [0, checkpoint.round), to replay into the engine.
  WalReplay evidence;

  // Forensics for logs/inspector: bytes cut from the torn tail, committed
  // rounds discarded because they postdate the checkpoint (they will be
  // re-executed), and checkpoint files deleted as stale or corrupt.
  uint64_t torn_bytes = 0;
  uint64_t discarded_rounds = 0;
  uint64_t dropped_checkpoints = 0;
};

// Disk-level recovery of a WAL directory (idempotent; a directory that was
// cleanly closed recovers to exactly its final state). A missing or empty
// directory recovers to a fresh run (round 0, no error).
RecoveredRun RecoverDurableRun(const std::string& dir);

// Applies a recovered checkpoint to a freshly built stack. Call AFTER
// engine->RestoreEvidence(rec.evidence) and after registering the same
// aggregates in the same order as the original run. Restores resolver and
// client state and verifies the replayed folds against the checkpoint's
// fingerprints. Returns "" on success, else a diagnostic (the run must not
// proceed: state would diverge from the interrupted run).
std::string ApplyCheckpoint(const RecoveredRun& rec, EstimationEngine* engine,
                            LbsClient* client);

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LOG_DURABLE_LOG_H_
