#include "engine/log/durable_log.h"

#include <filesystem>
#include <utility>

#include "util/check.h"

namespace lbsagg {
namespace engine {

namespace fs = std::filesystem;

namespace {

// Cumulative observations at the boundary after `rounds` committed rounds.
uint64_t ObservationsAt(const WalReplay& evidence, uint64_t rounds) {
  if (rounds == 0) return 0;
  const EvidenceRound& last = evidence.Round(rounds - 1);
  return last.first_observation + last.num_observations;
}

}  // namespace

// ---- DurableEvidenceLog ----

DurableEvidenceLog::DurableEvidenceLog(DurableLogOptions options,
                                       EstimationEngine* engine,
                                       LbsClient* client)
    : options_(std::move(options)), engine_(engine), client_(client) {
  LBSAGG_CHECK(engine_ != nullptr && client_ != nullptr);
  LBSAGG_CHECK(!options_.dir.empty()) << "DurableLogOptions::dir is required";
  // Attach after the aggregates are registered: the anchor checkpoint below
  // records their fingerprints, and resume verifies against the same set.
  LBSAGG_CHECK(engine_->num_aggregates() > 0)
      << "attach the durable log after registering aggregates";
  WalWriterOptions wal_options;
  wal_options.segment_bytes = options_.segment_bytes;
  wal_options.fsync = options_.fsync;
  wal_options.failpoint = options_.failpoint;
  writer_ = std::make_unique<WalWriter>(options_.dir, wal_options,
                                        engine_->evidence().num_rounds());
  engine_->AttachSink(this);
  // Anchor checkpoint at attach time, so every later recovery has a
  // checkpoint at or before whatever tail the crash leaves.
  Checkpoint();
}

DurableEvidenceLog::~DurableEvidenceLog() { Close(); }

void DurableEvidenceLog::OnBeginRound(uint64_t round,
                                      const Vec2& sample_point) {
  writer_->AppendBeginRound(round, sample_point);
}

void DurableEvidenceLog::OnAppend(uint64_t round,
                                  const Observation& observation) {
  (void)round;
  writer_->AppendObservation(observation);
}

void DurableEvidenceLog::OnEndRound(const EvidenceRound& round) {
  writer_->AppendEndRound(round);
  rounds_since_checkpoint_ += 1;
}

void DurableEvidenceLog::MaybeCheckpoint() {
  if (options_.checkpoint_every_rounds == 0) return;
  if (rounds_since_checkpoint_ >= options_.checkpoint_every_rounds) {
    Checkpoint();
  }
}

void DurableEvidenceLog::Checkpoint() {
  if (closed_ || !error_.empty()) return;
  // The checkpoint must not claim rounds the WAL hasn't made durable: sync
  // first, and skip checkpointing entirely once the writer has failed —
  // recovery will fall back to the last consistent (checkpoint, log) pair.
  writer_->Sync();
  if (!writer_->ok()) return;
  std::string error;
  if (!WriteCheckpointFile(options_.dir, BuildCheckpoint(*engine_, *client_),
                           &error)) {
    error_ = error;
    return;
  }
  checkpoints_written_ += 1;
  rounds_since_checkpoint_ = 0;
}

void DurableEvidenceLog::Close() {
  if (closed_) return;
  Checkpoint();
  writer_->Close();
  if (engine_->evidence().sink() == this) engine_->AttachSink(nullptr);
  closed_ = true;
}

// ---- checkpoint construction ----

CheckpointData BuildCheckpoint(const EstimationEngine& engine,
                               const LbsClient& client) {
  CheckpointData data;
  data.round = engine.evidence().num_rounds();
  data.observations = engine.evidence().num_observations();
  data.queries_used = client.queries_used();
  data.memo_hash = client.MemoStateHash();
  const CellResolver* resolver = engine.resolver();
  data.resolver_name = resolver->name();
  resolver->SaveState(&data.resolver_state);
  data.aggregates.reserve(engine.num_aggregates());
  for (size_t i = 0; i < engine.num_aggregates(); ++i) {
    const AggregateQuery* query = engine.aggregate(i);
    AggregateCheckpoint agg;
    agg.name = query->spec().name;
    agg.trace_hash = TraceFingerprint(query->trace());
    agg.estimate = query->rounds() > 0 ? query->Estimate() : 0.0;
    data.aggregates.push_back(std::move(agg));
  }
  return data;
}

// ---- recovery ----

RecoveredRun RecoverDurableRun(const std::string& dir) {
  RecoveredRun rec;
  WalReadResult read = ReadWal(dir);
  if (!read.error.empty()) {
    rec.error = read.error;
    return rec;
  }
  rec.torn_bytes = read.torn_bytes;
  const uint64_t complete = read.evidence.NumRounds();

  // A checkpoint is usable when it decodes, its round is covered by the
  // committed log, and its cumulative counters agree with the log at that
  // boundary (a checkpoint that outran what actually hit the disk — e.g.
  // under an injected write failure — is inconsistent and skipped).
  std::vector<CheckpointScanEntry> checkpoints = ScanCheckpoints(dir);
  std::vector<bool> usable(checkpoints.size(), false);
  int chosen = -1;
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const CheckpointScanEntry& entry = checkpoints[i];
    if (!entry.valid || entry.data.round > complete) continue;
    if (entry.data.observations != ObservationsAt(read.evidence,
                                                  entry.data.round)) {
      continue;
    }
    if (entry.data.round > 0 &&
        entry.data.queries_used !=
            read.evidence.Round(entry.data.round - 1).queries_after) {
      continue;
    }
    usable[i] = true;
    chosen = static_cast<int>(i);  // ascending order: last usable wins
  }

  uint64_t keep = 0;
  if (chosen >= 0) {
    rec.found_checkpoint = true;
    rec.checkpoint = checkpoints[chosen].data;
    keep = rec.checkpoint.round;
  }
  rec.discarded_rounds = complete - keep;

  std::string truncate_error;
  if (!TruncateWal(dir, keep, &truncate_error)) {
    rec.error = truncate_error;
    return rec;
  }
  // Checkpoints past the kept boundary reference rounds that no longer
  // exist; corrupt or inconsistent ones are dead weight. Older usable
  // checkpoints stay as fallback depth for future recoveries.
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    if (static_cast<int>(i) == chosen) continue;
    if (usable[i] && checkpoints[i].data.round <= keep) continue;
    std::error_code ec;
    fs::remove(checkpoints[i].path, ec);
    if (!ec) rec.dropped_checkpoints += 1;
  }

  rec.evidence = std::move(read.evidence);
  rec.evidence.TruncateTo(keep);
  return rec;
}

std::string ApplyCheckpoint(const RecoveredRun& rec, EstimationEngine* engine,
                            LbsClient* client) {
  if (!rec.error.empty()) return "recovery failed: " + rec.error;
  const CheckpointData& ckpt = rec.checkpoint;
  if (engine->evidence().num_rounds() != ckpt.round) {
    return "engine holds " + std::to_string(engine->evidence().num_rounds()) +
           " rounds but the checkpoint expects " + std::to_string(ckpt.round) +
           " — call RestoreEvidence(rec.evidence) first";
  }
  if (engine->evidence().num_observations() != ckpt.observations) {
    return "replayed evidence has " +
           std::to_string(engine->evidence().num_observations()) +
           " observations, checkpoint recorded " +
           std::to_string(ckpt.observations);
  }
  if (ckpt.memo_hash != 0) {
    return "interrupted run used a warm query memo; memo contents are not "
           "durable, so a resumed run would charge different queries — "
           "resume refused";
  }
  if (client->MemoStateHash() != 0) {
    return "resuming client already holds memo entries the interrupted run "
           "did not have — resume refused";
  }
  if (!rec.found_checkpoint) return "";  // fresh start: nothing to restore

  CellResolver* resolver = engine->resolver();
  if (ckpt.resolver_name != resolver->name()) {
    return "checkpoint was taken by resolver '" + ckpt.resolver_name +
           "', engine runs '" + resolver->name() + "'";
  }
  if (!resolver->RestoreState(ckpt.resolver_state)) {
    return "resolver rejected the checkpoint state blob";
  }
  client->RestoreQueryCount(ckpt.queries_used);
  if (engine->num_aggregates() != ckpt.aggregates.size()) {
    return "engine registers " + std::to_string(engine->num_aggregates()) +
           " aggregates, checkpoint recorded " +
           std::to_string(ckpt.aggregates.size());
  }
  for (size_t i = 0; i < ckpt.aggregates.size(); ++i) {
    const AggregateQuery* query = engine->aggregate(i);
    if (query->spec().name != ckpt.aggregates[i].name) {
      return "aggregate " + std::to_string(i) + " is '" + query->spec().name +
             "', checkpoint recorded '" + ckpt.aggregates[i].name + "'";
    }
    if (TraceFingerprint(query->trace()) != ckpt.aggregates[i].trace_hash) {
      return "replayed fold of '" + query->spec().name +
             "' diverges from the checkpoint fingerprint";
    }
  }
  return "";
}

}  // namespace engine
}  // namespace lbsagg
