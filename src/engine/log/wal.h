#ifndef LBSAGG_ENGINE_LOG_WAL_H_
#define LBSAGG_ENGINE_LOG_WAL_H_

// Segment-file writer and reader for the durable evidence log
// (wal_format.h; DESIGN.md §4.14). The writer appends framed records with a
// write/fsync/rotate discipline in the tarantool WAL idiom: every record is
// written immediately, fsync policy is configurable (per-round by default —
// an EndRound record is the commit point of the evidence protocol), and
// segments rotate at round boundaries once they pass a size threshold. The
// reader accepts the longest intact prefix and reports everything after the
// first short or corrupt frame as a torn tail for recovery to truncate.
//
// Crash injection for the recovery tests rides the writer itself: a
// WalFailPoint can silently stop persisting bytes mid-record (the torn
// write a SIGKILL leaves behind) or fail the nth fsync (unsynced bytes are
// dropped, as a lost page cache would), so every recovery cut point is
// reproducible deterministically in-process.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/evidence_store.h"
#include "engine/log/wal_format.h"

namespace lbsagg {
namespace engine {

enum class FsyncMode : uint8_t {
  kNone = 0,   // never fsync (bench ablation; recovery still works from
               // whatever the OS persisted)
  kRound = 1,  // fsync once per committed round, at the EndRound record
  kEvery = 2,  // fsync after every record (paranoid mode)
};

const char* FsyncModeName(FsyncMode mode);

// Deterministic failure injection (off by default).
struct WalFailPoint {
  // Stop persisting once this many bytes (header included, across the
  // writer's lifetime) have reached the file — later bytes silently vanish,
  // leaving the torn mid-record tail a crash would. 0 = off.
  uint64_t drop_after_bytes = 0;
  // Fail the nth fsync (1-based): bytes written since the last successful
  // fsync are dropped from the file and the writer latches !ok(). 0 = off.
  uint64_t fail_fsync_at = 0;
};

struct WalWriterOptions {
  // Rotate to a new segment at the next round boundary once the current
  // segment exceeds this size.
  uint64_t segment_bytes = 4u << 20;
  FsyncMode fsync = FsyncMode::kRound;
  WalFailPoint failpoint;
};

struct WalWriterStats {
  uint64_t records = 0;
  uint64_t bytes = 0;  // framed bytes handed to the file (headers included)
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
};

// Appends evidence-protocol records to the segment directory. Creates the
// directory and the first segment when absent; otherwise appends to the
// highest-numbered segment (recovery must already have truncated any torn
// tail — WalWriter never rewinds). All errors latch: after the first I/O
// failure ok() is false, error() says why, and later appends are no-ops.
class WalWriter {
 public:
  // `next_round` is the round number the first appended record will carry —
  // 0 for a fresh run, the recovered round count on resume.
  WalWriter(std::string dir, WalWriterOptions options, uint64_t next_round);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  void AppendBeginRound(uint64_t round, const Vec2& sample_point);
  void AppendObservation(const Observation& observation);
  void AppendEndRound(const EvidenceRound& round);

  // Explicit fsync of the current segment (no-op when nothing is dirty).
  void Sync();
  // Sync + close the current segment; the writer is unusable afterwards.
  void Close();

  const WalWriterStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  void OpenForAppend(uint64_t next_round);
  void StartSegment(uint64_t start_round);
  void RotateIfNeeded(uint64_t next_round);
  void AppendRecord(const std::string& payload);
  void WriteBytes(const std::string& bytes);
  void DoFsync();
  void Fail(const std::string& message);

  std::string dir_;
  WalWriterOptions options_;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_bytes_ = 0;      // logical bytes appended to the segment
  uint64_t segment_persisted_ = 0;  // bytes that actually reached the file
  uint64_t synced_bytes_ = 0;       // segment bytes covered by the last fsync
  uint64_t persisted_total_ = 0;    // lifetime bytes actually written
  bool dirty_ = false;
  WalWriterStats stats_;
  std::string error_;
};

// One decoded record with its location, for the lbsagg_wal inspector.
struct WalRecord {
  WalRecordType type = WalRecordType::kBeginRound;
  size_t segment = 0;    // index into WalReadResult::segments
  uint64_t offset = 0;   // byte offset of the frame within the segment
  WalBeginRound begin;   // valid when type == kBeginRound
  Observation observation;  // valid when type == kObservation
  WalEndRound end;       // valid when type == kEndRound
};

struct WalSegmentInfo {
  std::string path;
  uint64_t start_round = 0;
  uint64_t file_bytes = 0;
  uint64_t valid_bytes = 0;  // header + intact records
  uint64_t records = 0;
};

// The committed rounds recovered from a WAL directory — an EvidenceSource
// the engine replays through the same machinery late consumers use.
class WalReplay : public EvidenceSource {
 public:
  size_t NumRounds() const override { return rounds_.size(); }
  const EvidenceRound& Round(size_t i) const override { return rounds_[i]; }
  const Observation* Observations(const EvidenceRound& r) const override {
    return r.num_observations == 0 ? nullptr
                                   : log_.data() + r.first_observation;
  }
  size_t NumObservations() const { return log_.size(); }

  void AppendRound(const EvidenceRound& round,
                   std::vector<Observation> observations);
  // Drops rounds [n, ...) — recovery rewinds to a checkpoint boundary.
  void TruncateTo(size_t n);

 private:
  std::vector<EvidenceRound> rounds_;
  std::vector<Observation> log_;
};

struct WalReadResult {
  // Empty error = the directory was readable (possibly containing no
  // segments at all: zero rounds, nothing torn).
  std::string error;

  WalReplay evidence;  // complete, protocol-consistent rounds in order
  std::vector<WalSegmentInfo> segments;

  // Torn-tail accounting: bytes past the last intact record (summed over
  // the boundary segment and any segments after it), and whether the tail
  // held a round that began but never committed.
  uint64_t torn_bytes = 0;
  bool torn_round = false;

  // Byte boundary of round r's BeginRound frame, for r < NumRounds():
  // (segment index, offset). Recovery truncates at these boundaries.
  std::vector<std::pair<size_t, uint64_t>> round_offsets;

  // Number of segments that opened validly (good header, unbroken round
  // chain); 0 means nothing on disk is usable. The commit boundary is the
  // byte just past the last committed round — the truncation point when the
  // tail (torn bytes or an uncommitted round) has to go.
  size_t valid_segments = 0;
  size_t commit_segment = 0;
  uint64_t commit_offset = kWalHeaderBytes;

  // Filled only when `keep_records`: every intact record in order.
  std::vector<WalRecord> records;
};

// Reads every segment of `dir` in start_round order. Never modifies disk.
WalReadResult ReadWal(const std::string& dir, bool keep_records = false);

// Physically truncates the log to exactly `rounds` committed rounds: later
// segments are deleted and the boundary segment is ftruncated (torn tails
// go with it). False + error on I/O failure.
bool TruncateWal(const std::string& dir, uint64_t rounds, std::string* error);

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LOG_WAL_H_
