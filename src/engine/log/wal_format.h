#ifndef LBSAGG_ENGINE_LOG_WAL_FORMAT_H_
#define LBSAGG_ENGINE_LOG_WAL_FORMAT_H_

// On-disk format of the durable evidence log (DESIGN.md §4.14), in the
// tarantool WAL idiom: a directory of append-only segment files, each a
// fixed header followed by length-prefixed, checksummed records mirroring
// the evidence protocol exactly — one record per BeginRound / Append /
// EndRound event.
//
// Segment file `wal-<16 hex start_round>.wal`:
//
//   +--------------------------------------------------+
//   | magic "LBSWAL01"                        8 bytes  |
//   | format version (u32 le)                 4 bytes  |
//   | start_round    (u64 le)                 8 bytes  |
//   | crc32 of the 12 bytes above (u32 le)    4 bytes  |
//   +--------------------------------------------------+  = 24-byte header
//   | record 0 | record 1 | ...                        |
//   +--------------------------------------------------+
//
// Record framing:
//
//   +--------------------------------------------------+
//   | payload length (u32 le)                 4 bytes  |
//   | crc32 of payload (u32 le)               4 bytes  |
//   | payload: [u8 record type][type-specific body]    |
//   +--------------------------------------------------+
//
// Doubles are stored as IEEE-754 bit patterns (bit-identical resume is the
// contract; decimal round-trips lose the last ulp). A reader accepts the
// longest prefix of intact records and treats everything after the first
// short/corrupt frame as a torn tail to truncate — a crash mid-write can
// only ever damage the tail, never committed history.

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/observation.h"
#include "util/binary_io.h"

namespace lbsagg {
namespace engine {

inline constexpr char kWalMagic[8] = {'L', 'B', 'S', 'W', 'A', 'L', '0', '1'};
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalHeaderBytes = 24;
inline constexpr size_t kWalFrameBytes = 8;  // length + crc prefix

// One byte of payload[0].
enum class WalRecordType : uint8_t {
  kBeginRound = 1,
  kObservation = 2,
  kEndRound = 3,
};

struct WalBeginRound {
  uint64_t round = 0;
  Vec2 sample_point{};
};

struct WalEndRound {
  uint64_t round = 0;
  uint64_t queries_after = 0;
  uint64_t num_observations = 0;
};

// ---- segment header ----

inline std::string EncodeWalHeader(uint64_t start_round) {
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  BinaryWriter w(&out);
  w.PutU32(kWalVersion);
  w.PutU64(start_round);
  w.PutU32(Crc32(out.data() + sizeof(kWalMagic), 12));
  return out;
}

// Returns false when the header is short, the magic/version is wrong, or
// the header crc fails.
inline bool DecodeWalHeader(std::string_view bytes, uint64_t* start_round) {
  if (bytes.size() < kWalHeaderBytes) return false;
  if (std::string_view(bytes.data(), sizeof(kWalMagic)) !=
      std::string_view(kWalMagic, sizeof(kWalMagic))) {
    return false;
  }
  BinaryReader r(bytes.data() + sizeof(kWalMagic), 16);
  uint32_t version, crc;
  if (!r.GetU32(&version) || !r.GetU64(start_round) || !r.GetU32(&crc)) {
    return false;
  }
  if (version != kWalVersion) return false;
  return crc == Crc32(bytes.data() + sizeof(kWalMagic), 12);
}

// ---- record payloads ----

inline void EncodeBeginRound(const WalBeginRound& v, std::string* out) {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(WalRecordType::kBeginRound));
  w.PutU64(v.round);
  w.PutF64(v.sample_point.x);
  w.PutF64(v.sample_point.y);
}

inline void EncodeObservation(const Observation& v, std::string* out) {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(WalRecordType::kObservation));
  w.PutI32(v.tuple_id);
  w.PutI32(v.rank);
  w.PutI32(v.h);
  w.PutU8(v.has_location ? 1 : 0);
  w.PutF64(v.location.x);
  w.PutF64(v.location.y);
  w.PutU8(static_cast<uint8_t>(v.weight_form));
  w.PutF64(v.weight);
  w.PutU8(v.exact ? 1 : 0);
  w.PutU64(v.cost);
}

inline void EncodeEndRound(const WalEndRound& v, std::string* out) {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(WalRecordType::kEndRound));
  w.PutU64(v.round);
  w.PutU64(v.queries_after);
  w.PutU64(v.num_observations);
}

// Decoders over a payload *after* the leading type byte.

inline bool DecodeBeginRound(BinaryReader* r, WalBeginRound* v) {
  return r->GetU64(&v->round) && r->GetF64(&v->sample_point.x) &&
         r->GetF64(&v->sample_point.y);
}

inline bool DecodeObservation(BinaryReader* r, Observation* v) {
  int32_t tuple_id, rank, h;
  uint8_t has_location, weight_form, exact;
  if (!r->GetI32(&tuple_id) || !r->GetI32(&rank) || !r->GetI32(&h) ||
      !r->GetU8(&has_location) || !r->GetF64(&v->location.x) ||
      !r->GetF64(&v->location.y) || !r->GetU8(&weight_form) ||
      !r->GetF64(&v->weight) || !r->GetU8(&exact) || !r->GetU64(&v->cost)) {
    return false;
  }
  if (weight_form > static_cast<uint8_t>(WeightForm::kProbability)) {
    return false;
  }
  v->tuple_id = tuple_id;
  v->rank = rank;
  v->h = h;
  v->has_location = has_location != 0;
  v->weight_form = static_cast<WeightForm>(weight_form);
  v->exact = exact != 0;
  return true;
}

inline bool DecodeEndRound(BinaryReader* r, WalEndRound* v) {
  return r->GetU64(&v->round) && r->GetU64(&v->queries_after) &&
         r->GetU64(&v->num_observations);
}

// Frames a payload into [len][crc][payload].
inline std::string FrameWalRecord(std::string_view payload) {
  std::string out;
  BinaryWriter w(&out);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

// Segment file name for a starting round: "wal-0000000000000040.wal".
std::string WalSegmentName(uint64_t start_round);

// Parses a segment file name; false when `name` is not a WAL segment.
bool ParseWalSegmentName(std::string_view name, uint64_t* start_round);

// Checkpoint file name for a round boundary: "ckpt-0000000000000040.ckpt".
std::string CheckpointName(uint64_t round);
bool ParseCheckpointName(std::string_view name, uint64_t* round);

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LOG_WAL_FORMAT_H_
