#include "engine/log/wal_format.h"

#include <cstdio>
#include <cstdlib>

namespace lbsagg {
namespace engine {

namespace {

std::string HexName(const char* prefix, uint64_t value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", prefix,
                static_cast<unsigned long long>(value), suffix);
  return buf;
}

bool ParseHexName(std::string_view name, std::string_view prefix,
                  std::string_view suffix, uint64_t* value) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(prefix.size() + 16) != suffix) return false;
  uint64_t parsed = 0;
  for (char c : name.substr(prefix.size(), 16)) {
    parsed <<= 4;
    if (c >= '0' && c <= '9') {
      parsed |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      parsed |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *value = parsed;
  return true;
}

}  // namespace

std::string WalSegmentName(uint64_t start_round) {
  return HexName("wal-", start_round, ".wal");
}

bool ParseWalSegmentName(std::string_view name, uint64_t* start_round) {
  return ParseHexName(name, "wal-", ".wal", start_round);
}

std::string CheckpointName(uint64_t round) {
  return HexName("ckpt-", round, ".ckpt");
}

bool ParseCheckpointName(std::string_view name, uint64_t* round) {
  return ParseHexName(name, "ckpt-", ".ckpt", round);
}

}  // namespace engine
}  // namespace lbsagg
