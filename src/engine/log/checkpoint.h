#ifndef LBSAGG_ENGINE_LOG_CHECKPOINT_H_
#define LBSAGG_ENGINE_LOG_CHECKPOINT_H_

// Round-aligned checkpoints of the estimation state (DESIGN.md §4.14). A
// checkpoint at round R captures everything needed to continue *after* R
// committed rounds without re-resolving them: the resolver's opaque state
// blob (RNG, localization history / probability caches, counters), the
// client's interface-query counter, and per-aggregate fold fingerprints so
// recovery can verify the replayed folds match the state the checkpoint was
// taken against. Evidence itself is NOT in the checkpoint — it lives in the
// WAL, and recovery replays rounds [0, R) through the engine's normal
// late-consumer machinery.
//
// File `ckpt-<16 hex round>.ckpt`, written via temp-file + rename so a
// crash mid-checkpoint leaves either the old set or the new set, never a
// half-written file that parses:
//
//   magic "LBSCKPT1" | payload length (u32) | crc32(payload) | payload
//
// Recovery scans all checkpoint files, ignores corrupt ones, and resumes
// from the newest valid checkpoint whose round is covered by the WAL.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace_point.h"

namespace lbsagg {
namespace engine {

inline constexpr char kCheckpointMagic[8] = {'L', 'B', 'S', 'C',
                                             'K', 'P', 'T', '1'};
inline constexpr uint32_t kCheckpointVersion = 1;

// Order-sensitive fingerprint of a value sequence (the same mixing step the
// regression harness uses for trace fingerprints).
inline uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// Fingerprint of an aggregate's full trace: length, then every
// (queries, estimate-bit-pattern) pair in order. Bit-identical replay is
// the durability contract, so the raw IEEE bits go into the hash.
uint64_t TraceFingerprint(const std::vector<TracePoint>& trace);

struct AggregateCheckpoint {
  std::string name;          // AggregateSpec::name — positional match check
  uint64_t trace_hash = 0;   // TraceFingerprint at checkpoint time
  double estimate = 0.0;     // running estimate, for the inspector
};

struct CheckpointData {
  uint64_t round = 0;         // committed rounds at the boundary
  uint64_t observations = 0;  // cumulative observations in those rounds
  uint64_t queries_used = 0;  // client's interface-query counter
  // Commutative hash of the client's memo table (0 = empty). Memo contents
  // are not checkpointed, so a non-zero hash makes the run non-resumable:
  // re-executed rounds would hit a cold memo and charge different queries.
  uint64_t memo_hash = 0;
  std::string resolver_name;   // CellResolver::name() — family match check
  std::string resolver_state;  // CellResolver::SaveState blob
  std::vector<AggregateCheckpoint> aggregates;
};

std::string EncodeCheckpoint(const CheckpointData& data);
bool DecodeCheckpoint(std::string_view bytes, CheckpointData* data);

// Atomically writes `dir/ckpt-<round>.ckpt` (temp file + fsync + rename +
// directory fsync). False + error on I/O failure.
bool WriteCheckpointFile(const std::string& dir, const CheckpointData& data,
                         std::string* error);

// Reads + validates one checkpoint file; false on I/O error or corruption.
bool ReadCheckpointFile(const std::string& path, CheckpointData* data);

struct CheckpointScanEntry {
  std::string path;
  uint64_t round = 0;  // from the file name
  bool valid = false;  // decoded + crc-checked + name/payload rounds agree
  CheckpointData data;  // filled only when valid
};

// All checkpoint files of `dir` in ascending round order, each validated.
// Corrupt files are listed with valid=false so recovery can skip (and
// delete) them rather than fail.
std::vector<CheckpointScanEntry> ScanCheckpoints(const std::string& dir);

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LOG_CHECKPOINT_H_
