#include "engine/cell_resolver.h"

namespace lbsagg {
namespace engine {

bool EvidenceDemand::NeedsLocation() const {
  for (const AggregateSpec* spec : specs_) {
    if (spec->position_condition) return true;
  }
  return false;
}

bool EvidenceDemand::WantsLrTuple(const LbsClient& client, int id,
                                  const Vec2& location) const {
  for (const AggregateSpec* spec : specs_) {
    // Location-based selection conditions use the returned coordinates
    // directly on LR interfaces (§2.3).
    if (spec->position_condition && !spec->position_condition(location)) {
      continue;
    }
    const double numerator_value = spec->NumeratorValue(client, id);
    const double denominator_value = spec->DenominatorValue(client, id);
    if (numerator_value == 0.0 && denominator_value == 0.0) continue;
    if (numerator_value == 0.0 && spec->kind != AggregateSpec::Kind::kAvg) {
      // COUNT/SUM with a failed condition: the Horvitz–Thompson contribution
      // is exactly 0 — no need to compute the cell.
      continue;
    }
    return true;
  }
  return false;
}

bool EvidenceDemand::WantsRankedTuple(const LbsClient& client, int id) const {
  for (const AggregateSpec* spec : specs_) {
    if (spec->Passes(client, id)) return true;
  }
  return false;
}

bool EvidenceDemand::WantsProbeTuple(const LbsClient& client, int id,
                                     const Vec2& location) const {
  for (const AggregateSpec* spec : specs_) {
    const bool position_ok =
        !spec->position_condition || spec->position_condition(location);
    const double numerator_value =
        position_ok ? spec->NumeratorValue(client, id) : 0.0;
    const double denominator_value =
        position_ok ? spec->DenominatorValue(client, id) : 0.0;
    if (numerator_value != 0.0 || denominator_value != 0.0) return true;
  }
  return false;
}

}  // namespace engine
}  // namespace lbsagg
