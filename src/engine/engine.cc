#include "engine/engine.h"

#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace engine {

EstimationEngine::EstimationEngine(CellResolver* resolver,
                                   EngineOptions options)
    : resolver_(resolver),
      store_(EvidenceStoreOptions{options.registry, options.tracer}),
      rounds_counter_(obs::GetCounter(options.registry, "engine.rounds")),
      replayed_rounds_counter_(
          obs::GetCounter(options.registry, "engine.replayed_rounds")),
      tracer_(options.tracer) {
  LBSAGG_CHECK(resolver_ != nullptr);
}

void EstimationEngine::RebuildDemand() {
  std::vector<const AggregateSpec*> specs;
  specs.reserve(queries_.size());
  for (const std::unique_ptr<AggregateQuery>& q : queries_) {
    specs.push_back(&q->spec());
  }
  demand_ = EvidenceDemand(std::move(specs));
}

AggregateQuery* EstimationEngine::AddAggregate(const AggregateSpec& spec) {
  queries_.push_back(
      std::make_unique<AggregateQuery>(spec, &resolver_->client()));
  AggregateQuery* query = queries_.back().get();
  RebuildDemand();
  // Catch up on the shared evidence: the log is append-only, so replaying
  // it gives the late consumer exactly the view an early consumer had.
  for (size_t i = 0; i < store_.num_rounds(); ++i) {
    const EvidenceRound& round = store_.round(i);
    query->ConsumeRound(round, store_.observations(round),
                        round.num_observations);
    replayed_rounds_counter_.Add(1);
  }
  return query;
}

void EstimationEngine::RestoreEvidence(const EvidenceSource& source) {
  store_.RestoreFrom(source);
  for (size_t i = 0; i < store_.num_rounds(); ++i) {
    const EvidenceRound& round = store_.round(i);
    for (const std::unique_ptr<AggregateQuery>& query : queries_) {
      query->ConsumeRound(round, store_.observations(round),
                          round.num_observations);
      replayed_rounds_counter_.Add(1);
    }
  }
}

void EstimationEngine::Step() {
  LBSAGG_CHECK(!queries_.empty()) << "Step with no registered aggregates";
  const size_t index = store_.num_rounds();
  {
    obs::ScopedSpan round_span(tracer_, "engine.round", "engine");
    resolver_->ResolveRound(demand_, &store_);
  }
  LBSAGG_CHECK_EQ(store_.num_rounds(), index + 1)
      << "resolver must commit exactly one round per ResolveRound";
  const EvidenceRound& round = store_.round(index);
  const Observation* observations = store_.observations(round);
  for (const std::unique_ptr<AggregateQuery>& query : queries_) {
    query->ConsumeRound(round, observations, round.num_observations);
  }
  rounds_counter_.Add(1);
}

std::string EstimationEngine::diagnostics_json() const {
  JsonWriter json;
  json.BeginObject()
      .Key("resolver")
      .RawValue(resolver_->diagnostics_json())
      .Key("evidence")
      .RawValue(store_.ToJson())
      .KV("aggregates", static_cast<uint64_t>(queries_.size()))
      .EndObject();
  return json.TakeString();
}

}  // namespace engine
}  // namespace lbsagg
