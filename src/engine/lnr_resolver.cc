#include "engine/lnr_resolver.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "engine/resolver_state.h"
#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace engine {

namespace {

// One observability pointer instruments the whole stack: the resolver's
// registry flows into the cell computer (and from there into the binary
// searches) unless the caller pinned a different plane there explicitly.
LnrCellOptions PropagateRegistry(LnrCellOptions cell,
                                 obs::MetricsRegistry* registry) {
  if (cell.registry == nullptr) cell.registry = registry;
  return cell;
}

}  // namespace

LnrCellResolver::LnrCellResolver(LnrClient* client, const QuerySampler* sampler,
                                 LnrAggOptions options)
    : client_(client),
      sampler_(sampler),
      options_(options),
      cell_computer_(client, PropagateRegistry(options.cell, options.registry)),
      localizer_(client, options.localize),
      rng_(options.seed),
      rounds_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.rounds")),
      cells_inferred_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.cells_inferred")),
      cache_hits_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.cache_hits")),
      ht_weight_hist_(obs::GetHistogram(options.registry,
                                        "estimator.lnr.ht_weight",
                                        obs::DecadeBounds(1.0, 1e9))),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
}

void LnrCellResolver::EmitObservation(int id, int rank, const Vec2& q0,
                                      double probability,
                                      uint64_t queries_before,
                                      const EvidenceDemand& demand,
                                      EvidenceStore* store) {
  LBSAGG_CHECK_GT(probability, 0.0);
  ht_weight_hist_.Observe(1.0 / probability);
  Observation obs;
  obs.tuple_id = id;
  obs.rank = rank;
  obs.h = options_.use_topk_cells ? client_->k() : 1;
  obs.weight_form = WeightForm::kProbability;
  obs.weight = probability;
  obs.exact = true;  // inferred to binary-search precision, not Monte-Carlo
  if (demand.NeedsLocation()) {
    // §4.3: the tuple's location is not returned — infer it to the
    // binary-search precision, then let consumers evaluate their position
    // conditions on it. Localization queries are spent once here and the
    // inferred position is shared by every registered aggregate.
    const std::optional<Vec2> pos = localizer_.Locate(id, q0);
    if (pos.has_value()) {
      obs.location = *pos;
      obs.has_location = true;
    }
  }
  obs.cost = client_->queries_used() - queries_before;
  store->Append(obs);
}

void LnrCellResolver::ResolveRound(const EvidenceDemand& demand,
                                   EvidenceStore* store) {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  const Vec2 q = sampler_->Sample(rng_);
  store->BeginRound(q);
  const std::vector<int> ids = client_->Query(q);

  if (!ids.empty()) {
    if (options_.use_topk_cells && client_->k() > 1) {
      // §4.2: each of the k returned tuples contributes, weighted by its
      // (possibly concave) top-k cell.
      for (size_t i = 0; i < ids.size(); ++i) {
        const int id = ids[i];
        if (!demand.WantsRankedTuple(*client_, id)) {
          continue;  // zero contribution — skip the cell inference
        }
        const uint64_t queries_before = client_->queries_used();
        double p = 0.0;
        if (const auto it = topk_probability_cache_.find(id);
            options_.reuse_cell_probabilities &&
            it != topk_probability_cache_.end()) {
          p = it->second;
          ++diagnostics_.cache_hits;
          cache_hits_counter_.Add(1);
        } else {
          std::optional<LnrCellResult> cell;
          {
            obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
            cell = cell_computer_.ComputeTopkCell(id, q);
          }
          if (!cell.has_value() || cell->region.IsEmpty()) continue;
          p = sampler_->RegionProbability(cell->region);
          topk_probability_cache_.emplace(id, p);
          ++diagnostics_.cells_inferred;
          cells_inferred_counter_.Add(1);
        }
        if (p <= 0.0) continue;
        EmitObservation(id, static_cast<int>(i) + 1, q, p, queries_before,
                        demand, store);
      }
    } else {
      const int id = ids.front();
      if (demand.WantsRankedTuple(*client_, id)) {
        const uint64_t queries_before = client_->queries_used();
        double p = 0.0;
        if (const auto it = top1_probability_cache_.find(id);
            options_.reuse_cell_probabilities &&
            it != top1_probability_cache_.end()) {
          p = it->second;
          ++diagnostics_.cache_hits;
          cache_hits_counter_.Add(1);
        } else {
          std::optional<LnrCellResult> cell;
          {
            obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
            cell = cell_computer_.ComputeTop1Cell(id, q);
          }
          if (cell.has_value() && !cell->cell.IsEmpty()) {
            p = sampler_->RegionProbability(cell->cell);
          }
          top1_probability_cache_.emplace(id, p);
          ++diagnostics_.cells_inferred;
          cells_inferred_counter_.Add(1);
        }
        if (p > 0.0) {
          EmitObservation(id, 1, q, p, queries_before, demand, store);
        }
      }
    }
  }

  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  store->EndRound(client_->queries_used());
}

std::string LnrCellResolver::diagnostics_json() const {
  JsonWriter json;
  json.BeginObject()
      .KV("resolver", "lnr")
      .KV("rounds", static_cast<uint64_t>(diagnostics_.rounds))
      .KV("cells_inferred", static_cast<uint64_t>(diagnostics_.cells_inferred))
      .KV("cache_hits", static_cast<uint64_t>(diagnostics_.cache_hits))
      .EndObject();
  return json.TakeString();
}

namespace {

// Probability caches are persisted sorted by tuple id: unordered_map
// iteration order varies across processes, and checkpoint blobs must be
// byte-stable so repeated checkpoints of the same state hash identically.
void SaveProbabilityCache(BinaryWriter* w,
                          const std::unordered_map<int, double>& cache) {
  std::vector<std::pair<int, double>> sorted(cache.begin(), cache.end());
  std::sort(sorted.begin(), sorted.end());
  w->PutU64(sorted.size());
  for (const auto& [id, p] : sorted) {
    w->PutI32(id);
    w->PutF64(p);
  }
}

bool RestoreProbabilityCache(BinaryReader* r,
                             std::unordered_map<int, double>* cache) {
  uint64_t n = 0;
  if (!r->GetU64(&n)) return false;
  cache->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int32_t id;
    double p;
    if (!r->GetI32(&id) || !r->GetF64(&p)) return false;
    cache->emplace(id, p);
  }
  return true;
}

}  // namespace

void LnrCellResolver::SaveState(std::string* out) const {
  BinaryWriter w(out);
  SaveResolverHeader(&w, kLnrResolverTag);
  SaveRngState(&w, rng_);
  SaveProbabilityCache(&w, top1_probability_cache_);
  SaveProbabilityCache(&w, topk_probability_cache_);
  w.PutU64(diagnostics_.rounds);
  w.PutU64(diagnostics_.cells_inferred);
  w.PutU64(diagnostics_.cache_hits);
}

bool LnrCellResolver::RestoreState(std::string_view blob) {
  LBSAGG_CHECK(top1_probability_cache_.empty() &&
               topk_probability_cache_.empty())
      << "RestoreState requires a fresh resolver";
  BinaryReader r(blob);
  if (!CheckResolverHeader(&r, kLnrResolverTag)) return false;
  if (!RestoreRngState(&r, &rng_)) return false;
  if (!RestoreProbabilityCache(&r, &top1_probability_cache_)) return false;
  if (!RestoreProbabilityCache(&r, &topk_probability_cache_)) return false;
  uint64_t rounds, inferred, hits;
  if (!r.GetU64(&rounds) || !r.GetU64(&inferred) || !r.GetU64(&hits)) {
    return false;
  }
  diagnostics_.rounds = rounds;
  diagnostics_.cells_inferred = inferred;
  diagnostics_.cache_hits = hits;
  return r.ok() && r.remaining() == 0;
}

}  // namespace engine
}  // namespace lbsagg
