#ifndef LBSAGG_ENGINE_LR_RESOLVER_H_
#define LBSAGG_ENGINE_LR_RESOLVER_H_

// Acquisition layer for location-returned kNN interfaces: the sampling,
// adaptive-h, and cell-computation core of Algorithm LR-LBS-AGG (§3.3),
// carved out of the pre-engine LrAggEstimator. The HT accumulation moved to
// engine::AggregateQuery; this class owns everything that costs interface
// queries or consumes randomness, and its query/rng streams are bit-for-bit
// those of the monolith it replaces.

#include <cstdint>
#include <string>

#include "core/history.h"
#include "core/lr_cell.h"
#include "core/sampler.h"
#include "engine/cell_resolver.h"
#include "lbs/client.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace lbsagg {

// Per-estimator run diagnostics — what an operator needs to tune λ0, the
// Monte-Carlo thresholds and the budget. (Defined here with the resolver
// that fills it in; core/lr_agg.h re-exports it for the adapter's users.)
struct LrAggDiagnostics {
  size_t rounds = 0;            // sampling rounds completed
  size_t cells_exact = 0;       // cells pinned down exactly (Theorem 1)
  size_t cells_monte_carlo = 0; // cells finished by §3.2.4 trials
  size_t h_used[8] = {};        // histogram of the h chosen per contribution
                                // (index min(h,7))
  uint64_t cell_queries = 0;    // queries spent inside cell computations
};

// Configuration of Algorithm LR-LBS-AGG (Algorithm 5). Shared verbatim by
// the LrCellResolver and the LrAggEstimator adapter over it.
struct LrAggOptions {
  // §3.2.3 adaptive choice of h per returned tuple (Algorithm 4). When
  // false, a fixed h = min(fixed_h, k) is used for every tuple.
  bool adaptive_h = true;
  int fixed_h = 1;

  // λ0 threshold of Algorithm 4 as a fraction of the bounding-box area: a
  // top-h cell whose upper-bound area exceeds λ0 is not worth the queries.
  // The default corresponds to a few times the mean top-1 cell at the
  // benchmark scales (tuned like the paper tuned its λ0).
  double lambda0_fraction = 2e-5;

  // Cell computation flags (§3.2.1, §3.2.2, §3.2.4).
  LrCellOptions cell;

  uint64_t seed = 1;

  // Metric plane for the estimator.lr.* counters and the estimator.lr.ht_weight
  // histogram; null lands on obs::MetricsRegistry::Default(). Propagated into
  // cell.registry when that is unset, so one pointer instruments the whole
  // estimator stack.
  obs::MetricsRegistry* registry = nullptr;

  // When set, each round emits an "estimator.round" span with nested
  // "estimator.cell" spans per Horvitz–Thompson cell computation.
  obs::Tracer* tracer = nullptr;
};

namespace engine {

class LrCellResolver final : public CellResolver {
 public:
  // All pointers must outlive the resolver.
  LrCellResolver(LrClient* client, const QuerySampler* sampler,
                 LrAggOptions options = {});

  // One sampling round: one random query location; a cell computation (and
  // one observation) for each returned tuple within its chosen h that some
  // registered aggregate wants.
  void ResolveRound(const EvidenceDemand& demand, EvidenceStore* store) override;

  const LbsClient& client() const override { return *client_; }
  uint64_t queries_used() const override { return client_->queries_used(); }
  const char* name() const override { return "lr"; }
  std::string diagnostics_json() const override;

  // Mutable state: the rng stream, the location history (with its kd index
  // implied by the insertion sequence), and the diagnostics tallies.
  void SaveState(std::string* out) const override;
  bool RestoreState(std::string_view blob) override;

  const LrAggDiagnostics& diagnostics() const { return diagnostics_; }
  History& history() { return history_; }
  const LrAggOptions& options() const { return options_; }

 private:
  // Algorithm 4: the largest h ∈ [2, k] with λ_h(t) ≤ λ0, else 1.
  int ChooseH(int id, const Vec2& pos);

  LrClient* client_;
  const QuerySampler* sampler_;
  LrAggOptions options_;
  History history_;
  LrCellComputer cell_computer_;
  Rng rng_;
  LrAggDiagnostics diagnostics_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef cells_exact_counter_;
  obs::CounterRef cells_mc_counter_;
  obs::HistogramRef ht_weight_hist_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LR_RESOLVER_H_
