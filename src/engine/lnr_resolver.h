#ifndef LBSAGG_ENGINE_LNR_RESOLVER_H_
#define LBSAGG_ENGINE_LNR_RESOLVER_H_

// Acquisition layer for rank-only kNN interfaces: the sampling, cell
// inference, probability caching and localization core of Algorithm
// LNR-LBS-AGG (§4), carved out of the pre-engine LnrAggEstimator. Emits
// kProbability observations (contribution = value / p), matching the
// monolith's floating-point arithmetic exactly.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/lnr_cell.h"
#include "core/localize.h"
#include "core/sampler.h"
#include "engine/cell_resolver.h"
#include "lbs/client.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace lbsagg {

// Per-run diagnostics of the rank-only estimator. (Defined here with the
// resolver that fills it in; core/lnr_agg.h re-exports it.)
struct LnrAggDiagnostics {
  size_t rounds = 0;
  size_t cells_inferred = 0;  // cells actually computed via binary search
  size_t cache_hits = 0;      // samples served from the probability cache
};

// Configuration of Algorithm LNR-LBS-AGG (§4). Shared verbatim by the
// LnrCellResolver and the LnrAggEstimator adapter over it.
struct LnrAggOptions {
  // When true and the interface k > 1, each sample infers the top-k cell of
  // every returned tuple (§4.2); otherwise only the top-1 tuple's convex
  // cell is used.
  bool use_topk_cells = false;

  LnrCellOptions cell;
  LocalizeOptions localize;

  // §3.2.2 adapted to LNR: cache each tuple's inferred cell probability
  // across samples (the service is static, so it never changes). Disable
  // only for ablation.
  bool reuse_cell_probabilities = true;

  uint64_t seed = 3;

  // Metric plane for the estimator.lnr.* counters and the
  // estimator.lnr.ht_weight histogram; null lands on
  // obs::MetricsRegistry::Default(). Propagated into cell.registry (and from
  // there into the binary searches) when that is unset.
  obs::MetricsRegistry* registry = nullptr;

  // When set, each round emits an "estimator.round" span with nested
  // "estimator.cell" spans per cell inference.
  obs::Tracer* tracer = nullptr;
};

namespace engine {

class LnrCellResolver final : public CellResolver {
 public:
  LnrCellResolver(LnrClient* client, const QuerySampler* sampler,
                  LnrAggOptions options = {});

  // One sampling round: one random location; cells of the used tuples are
  // inferred from ranks alone. When the demand carries a position condition
  // the observed tuples are localized (§4.3) before being logged.
  void ResolveRound(const EvidenceDemand& demand, EvidenceStore* store) override;

  const LbsClient& client() const override { return *client_; }
  uint64_t queries_used() const override { return client_->queries_used(); }
  const char* name() const override { return "lnr"; }
  std::string diagnostics_json() const override;

  // Mutable state: the rng stream, both cell-probability caches (persisted
  // sorted by tuple id so the blob is process-independent), and the
  // diagnostics tallies.
  void SaveState(std::string* out) const override;
  bool RestoreState(std::string_view blob) override;

  const LnrAggDiagnostics& diagnostics() const { return diagnostics_; }
  const LnrAggOptions& options() const { return options_; }

 private:
  // Logs one observation for a tuple with inferred cell probability p > 0,
  // localizing first when the demand needs locations.
  void EmitObservation(int id, int rank, const Vec2& q0, double probability,
                       uint64_t queries_before, const EvidenceDemand& demand,
                       EvidenceStore* store);

  LnrClient* client_;
  const QuerySampler* sampler_;
  LnrAggOptions options_;
  LnrCellComputer cell_computer_;
  Localizer localizer_;
  // §3.2.2 adapted to LNR: the service is static, so a tuple's inferred
  // cell probability never changes — computing it once per tuple makes
  // every later sample of the same tuple free. Big-cell (rural) tuples are
  // exactly the ones resampled most often.
  std::unordered_map<int, double> top1_probability_cache_;
  std::unordered_map<int, double> topk_probability_cache_;
  Rng rng_;
  LnrAggDiagnostics diagnostics_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef cells_inferred_counter_;
  obs::CounterRef cache_hits_counter_;
  obs::HistogramRef ht_weight_hist_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace engine
}  // namespace lbsagg

#endif  // LBSAGG_ENGINE_LNR_RESOLVER_H_
