#include "engine/lr_resolver.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace lbsagg {
namespace engine {

namespace {

// One observability pointer instruments the whole stack: the resolver's
// registry flows into the cell computer unless the caller pinned a
// different plane there explicitly.
LrCellOptions PropagateRegistry(LrCellOptions cell,
                                obs::MetricsRegistry* registry) {
  if (cell.registry == nullptr) cell.registry = registry;
  return cell;
}

}  // namespace

LrCellResolver::LrCellResolver(LrClient* client, const QuerySampler* sampler,
                               LrAggOptions options)
    : client_(client),
      sampler_(sampler),
      options_(options),
      cell_computer_(client, &history_, sampler,
                     PropagateRegistry(options.cell, options.registry)),
      rng_(options.seed),
      rounds_counter_(obs::GetCounter(options.registry, "estimator.lr.rounds")),
      cells_exact_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_exact")),
      cells_mc_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_monte_carlo")),
      ht_weight_hist_(obs::GetHistogram(options.registry,
                                        "estimator.lr.ht_weight",
                                        obs::DecadeBounds(1.0, 1e9))),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
  if (!options_.adaptive_h) {
    LBSAGG_CHECK_GE(options_.fixed_h, 1);
  }
}

int LrCellResolver::ChooseH(int id, const Vec2& pos) {
  const int k = client_->k();
  if (!options_.adaptive_h) return std::min(options_.fixed_h, k);
  if (k == 1) return 1;
  const double lambda0 = options_.lambda0_fraction * client_->region().Area();
  // λ_h is non-decreasing in h: scan upward and stop at the first bound
  // exceeding λ0. In the common case λ_2 already fails and a single region
  // computation decides h = 1.
  int chosen = 1;
  for (int h = 2; h <= k; ++h) {
    const double lambda_h =
        history_.UpperBoundCellArea(id, pos, client_->region(), h);
    if (lambda_h > lambda0) break;
    chosen = h;
  }
  return chosen;
}

void LrCellResolver::ResolveRound(const EvidenceDemand& demand,
                                  EvidenceStore* store) {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  const Vec2 q = sampler_->Sample(rng_);
  store->BeginRound(q);
  std::vector<LrClient::Item> items = client_->Query(q);

  // §5.3: services with non-distance ranking (e.g. Google Places
  // "prominence") can reorder results, but an LR interface always returns
  // locations — re-sorting by actual distance restores the nearest-neighbor
  // semantics every cell argument relies on. A no-op for plain distance
  // ranking.
  std::stable_sort(items.begin(), items.end(),
                   [](const LrClient::Item& a, const LrClient::Item& b) {
                     return a.distance < b.distance;
                   });

  // Decide h for every returned tuple *before* ingesting the new locations:
  // Algorithm 4 derives h from history alone, keeping the inclusion event
  // independent of the current query's outcome.
  std::vector<int> chosen_h(items.size(), 1);
  for (size_t i = 0; i < items.size(); ++i) {
    chosen_h[i] = ChooseH(items[i].id, items[i].location);
  }
  for (const LrClient::Item& item : items) {
    history_.Record(item.id, item.location);
  }

  for (size_t i = 0; i < items.size(); ++i) {
    const LrClient::Item& item = items[i];
    const int rank = static_cast<int>(i) + 1;
    const int h = chosen_h[i];
    // The sample "q ∈ V_h(t)" occurred iff t ranks within the top h, so a
    // tuple only contributes when rank <= h (see DESIGN.md on the Eq. (2)
    // inclusion condition).
    if (rank > h) continue;
    if (!demand.WantsLrTuple(*client_, item.id, item.location)) continue;

    const uint64_t queries_before = client_->queries_used();
    LrCellComputer::Result cell;
    {
      obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
      cell = cell_computer_.ComputeInverseProbability(item.id, item.location,
                                                      h, rng_);
    }
    diagnostics_.cell_queries += cell.queries;
    if (cell.exact) {
      ++diagnostics_.cells_exact;
      cells_exact_counter_.Add(1);
    } else {
      ++diagnostics_.cells_monte_carlo;
      cells_mc_counter_.Add(1);
    }
    ht_weight_hist_.Observe(cell.inv_probability);
    ++diagnostics_.h_used[std::min<size_t>(h, 7)];

    Observation obs;
    obs.tuple_id = item.id;
    obs.rank = rank;
    obs.h = h;
    obs.location = item.location;
    obs.has_location = true;
    obs.weight_form = WeightForm::kInverseProbability;
    obs.weight = cell.inv_probability;
    obs.exact = cell.exact;
    obs.cost = client_->queries_used() - queries_before;
    store->Append(obs);
  }

  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  store->EndRound(client_->queries_used());
}

std::string LrCellResolver::diagnostics_json() const {
  std::ostringstream out;
  out << "{\"resolver\":\"lr\",\"rounds\":" << diagnostics_.rounds
      << ",\"cells_exact\":" << diagnostics_.cells_exact
      << ",\"cells_monte_carlo\":" << diagnostics_.cells_monte_carlo
      << ",\"cell_queries\":" << diagnostics_.cell_queries << ",\"h_used\":[";
  for (size_t i = 0; i < 8; ++i) {
    if (i > 0) out << ",";
    out << diagnostics_.h_used[i];
  }
  out << "]}";
  return out.str();
}

}  // namespace engine
}  // namespace lbsagg
