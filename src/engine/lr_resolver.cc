#include "engine/lr_resolver.h"

#include <algorithm>
#include <vector>

#include "engine/resolver_state.h"
#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace engine {

namespace {

// One observability pointer instruments the whole stack: the resolver's
// registry flows into the cell computer unless the caller pinned a
// different plane there explicitly.
LrCellOptions PropagateRegistry(LrCellOptions cell,
                                obs::MetricsRegistry* registry) {
  if (cell.registry == nullptr) cell.registry = registry;
  return cell;
}

}  // namespace

LrCellResolver::LrCellResolver(LrClient* client, const QuerySampler* sampler,
                               LrAggOptions options)
    : client_(client),
      sampler_(sampler),
      options_(options),
      cell_computer_(client, &history_, sampler,
                     PropagateRegistry(options.cell, options.registry)),
      rng_(options.seed),
      rounds_counter_(obs::GetCounter(options.registry, "estimator.lr.rounds")),
      cells_exact_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_exact")),
      cells_mc_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_monte_carlo")),
      ht_weight_hist_(obs::GetHistogram(options.registry,
                                        "estimator.lr.ht_weight",
                                        obs::DecadeBounds(1.0, 1e9))),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
  if (!options_.adaptive_h) {
    LBSAGG_CHECK_GE(options_.fixed_h, 1);
  }
}

int LrCellResolver::ChooseH(int id, const Vec2& pos) {
  const int k = client_->k();
  if (!options_.adaptive_h) return std::min(options_.fixed_h, k);
  if (k == 1) return 1;
  const double lambda0 = options_.lambda0_fraction * client_->region().Area();
  // λ_h is non-decreasing in h: scan upward and stop at the first bound
  // exceeding λ0. In the common case λ_2 already fails and a single region
  // computation decides h = 1.
  int chosen = 1;
  for (int h = 2; h <= k; ++h) {
    const double lambda_h =
        history_.UpperBoundCellArea(id, pos, client_->region(), h);
    if (lambda_h > lambda0) break;
    chosen = h;
  }
  return chosen;
}

void LrCellResolver::ResolveRound(const EvidenceDemand& demand,
                                  EvidenceStore* store) {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  const Vec2 q = sampler_->Sample(rng_);
  store->BeginRound(q);
  std::vector<LrClient::Item> items = client_->Query(q);

  // §5.3: services with non-distance ranking (e.g. Google Places
  // "prominence") can reorder results, but an LR interface always returns
  // locations — re-sorting by actual distance restores the nearest-neighbor
  // semantics every cell argument relies on. A no-op for plain distance
  // ranking.
  std::stable_sort(items.begin(), items.end(),
                   [](const LrClient::Item& a, const LrClient::Item& b) {
                     return a.distance < b.distance;
                   });

  // Decide h for every returned tuple *before* ingesting the new locations:
  // Algorithm 4 derives h from history alone, keeping the inclusion event
  // independent of the current query's outcome.
  std::vector<int> chosen_h(items.size(), 1);
  for (size_t i = 0; i < items.size(); ++i) {
    chosen_h[i] = ChooseH(items[i].id, items[i].location);
  }
  for (const LrClient::Item& item : items) {
    history_.Record(item.id, item.location);
  }

  for (size_t i = 0; i < items.size(); ++i) {
    const LrClient::Item& item = items[i];
    const int rank = static_cast<int>(i) + 1;
    const int h = chosen_h[i];
    // The sample "q ∈ V_h(t)" occurred iff t ranks within the top h, so a
    // tuple only contributes when rank <= h (see DESIGN.md on the Eq. (2)
    // inclusion condition).
    if (rank > h) continue;
    if (!demand.WantsLrTuple(*client_, item.id, item.location)) continue;

    const uint64_t queries_before = client_->queries_used();
    LrCellComputer::Result cell;
    {
      obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
      cell = cell_computer_.ComputeInverseProbability(item.id, item.location,
                                                      h, rng_);
    }
    diagnostics_.cell_queries += cell.queries;
    if (cell.exact) {
      ++diagnostics_.cells_exact;
      cells_exact_counter_.Add(1);
    } else {
      ++diagnostics_.cells_monte_carlo;
      cells_mc_counter_.Add(1);
    }
    ht_weight_hist_.Observe(cell.inv_probability);
    ++diagnostics_.h_used[std::min<size_t>(h, 7)];

    Observation obs;
    obs.tuple_id = item.id;
    obs.rank = rank;
    obs.h = h;
    obs.location = item.location;
    obs.has_location = true;
    obs.weight_form = WeightForm::kInverseProbability;
    obs.weight = cell.inv_probability;
    obs.exact = cell.exact;
    obs.cost = client_->queries_used() - queries_before;
    store->Append(obs);
  }

  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  store->EndRound(client_->queries_used());
}

std::string LrCellResolver::diagnostics_json() const {
  JsonWriter json;
  json.BeginObject()
      .KV("resolver", "lr")
      .KV("rounds", static_cast<uint64_t>(diagnostics_.rounds))
      .KV("cells_exact", static_cast<uint64_t>(diagnostics_.cells_exact))
      .KV("cells_monte_carlo",
          static_cast<uint64_t>(diagnostics_.cells_monte_carlo))
      .KV("cell_queries", diagnostics_.cell_queries)
      .Key("h_used")
      .BeginArray();
  for (size_t i = 0; i < 8; ++i) {
    json.Value(static_cast<uint64_t>(diagnostics_.h_used[i]));
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

void LrCellResolver::SaveState(std::string* out) const {
  BinaryWriter w(out);
  SaveResolverHeader(&w, kLrResolverTag);
  SaveRngState(&w, rng_);
  const std::vector<std::pair<int, Vec2>> entries = history_.Entries();
  w.PutU64(entries.size());
  for (const auto& [id, pos] : entries) {
    w.PutI32(id);
    w.PutF64(pos.x);
    w.PutF64(pos.y);
  }
  w.PutU64(diagnostics_.rounds);
  w.PutU64(diagnostics_.cells_exact);
  w.PutU64(diagnostics_.cells_monte_carlo);
  w.PutU64(diagnostics_.cell_queries);
  for (size_t h : diagnostics_.h_used) w.PutU64(h);
}

bool LrCellResolver::RestoreState(std::string_view blob) {
  LBSAGG_CHECK_EQ(history_.size(), 0u)
      << "RestoreState requires a fresh resolver";
  BinaryReader r(blob);
  if (!CheckResolverHeader(&r, kLrResolverTag)) return false;
  if (!RestoreRngState(&r, &rng_)) return false;
  uint64_t entries = 0;
  if (!r.GetU64(&entries)) return false;
  for (uint64_t i = 0; i < entries; ++i) {
    int32_t id;
    Vec2 pos;
    if (!r.GetI32(&id) || !r.GetF64(&pos.x) || !r.GetF64(&pos.y)) return false;
    // Replaying Record() in insertion order reproduces the kd-index rebuild
    // schedule exactly — indexed_ is a pure function of the entry count.
    history_.Record(id, pos);
  }
  uint64_t rounds, exact, mc, cell_queries;
  if (!r.GetU64(&rounds) || !r.GetU64(&exact) || !r.GetU64(&mc) ||
      !r.GetU64(&cell_queries)) {
    return false;
  }
  diagnostics_.rounds = rounds;
  diagnostics_.cells_exact = exact;
  diagnostics_.cells_monte_carlo = mc;
  diagnostics_.cell_queries = cell_queries;
  for (size_t& h : diagnostics_.h_used) {
    uint64_t v;
    if (!r.GetU64(&v)) return false;
    h = v;
  }
  return r.ok() && r.remaining() == 0;
}

}  // namespace engine
}  // namespace lbsagg
