#include "engine/nno_resolver.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/resolver_state.h"
#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace engine {

NnoProbeResolver::NnoProbeResolver(LrClient* client, NnoOptions options)
    : client_(client),
      options_(options),
      rng_(options.seed),
      rounds_counter_(obs::GetCounter(options.registry, "estimator.nno.rounds")),
      growth_rounds_counter_(
          obs::GetCounter(options.registry, "estimator.nno.growth_rounds")),
      mc_probes_counter_(
          obs::GetCounter(options.registry, "estimator.nno.mc_probes")),
      mc_hits_counter_(
          obs::GetCounter(options.registry, "estimator.nno.mc_hits")),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK_GE(options_.ring_points, 3);
  LBSAGG_CHECK_GE(options_.area_samples, 1);
}

double NnoProbeResolver::EstimateCellArea(int id, const Vec2& pos) {
  const Box& box = client_->region();

  // Grow a disc around t until a probe ring no longer returns t anywhere —
  // heuristic containment of V(t), as in the bias-prone prior approach.
  double radius =
      options_.init_radius_factor * 1e-4 * Distance(box.lo, box.hi);
  for (int round = 0; round < options_.max_growth_rounds; ++round) {
    ++diagnostics_.growth_rounds;
    growth_rounds_counter_.Add(1);
    bool any_hit = false;
    for (int i = 0; i < options_.ring_points; ++i) {
      const double angle = 2.0 * M_PI * (i + 0.5 * (round % 2)) /
                           options_.ring_points;
      const Vec2 probe =
          box.Clamp(pos + Vec2{std::cos(angle), std::sin(angle)} * radius);
      const std::vector<LrClient::Item> items = client_->Query(probe);
      if (!items.empty() && items.front().id == id) {
        any_hit = true;
        break;
      }
    }
    if (!any_hit) break;
    radius *= 2.0;
  }

  // Multi-scale Monte-Carlo area estimate: membership probes in dyadic
  // annuli from `radius` down, so the estimate keeps relative precision
  // whether the cell fills the disc or only its very center. The estimate
  // of |V(t)| is (roughly) unbiased; the estimator 1/|V̂| is not — the
  // inherent bias of [10] that LR-LBS-AGG eliminates.
  constexpr int kLevels = 8;
  const int per_level = std::max(2, options_.area_samples / kLevels);
  double area = 0.0;
  double outer = radius;
  for (int level = 0; level < kLevels; ++level) {
    const double inner = outer * 0.5;
    // The membership probes of one annulus are mutually independent, so
    // they go through the client's batch path — pipelined across the
    // dispatcher's workers when one is attached, with the exact same
    // probe sequence, accounting, and result pages either way. All rng
    // draws happen up front, in the sequential order.
    std::vector<Vec2> probes;
    probes.reserve(per_level);
    for (int i = 0; i < per_level; ++i) {
      // Uniform in the annulus (inner, outer].
      const double u = rng_.Uniform01();
      const double r =
          std::sqrt(inner * inner + u * (outer * outer - inner * inner));
      const double angle = rng_.Uniform(0.0, 2.0 * M_PI);
      const Vec2 probe = pos + Vec2{std::cos(angle), std::sin(angle)} * r;
      if (!box.Contains(probe)) continue;  // free: outside the region
      probes.push_back(probe);
    }
    int hits = 0;
    for (const std::vector<LrClient::Item>& items :
         client_->QueryBatch(probes)) {
      if (!items.empty() && items.front().id == id) ++hits;
    }
    diagnostics_.mc_probes += probes.size();
    diagnostics_.mc_hits += static_cast<uint64_t>(hits);
    mc_probes_counter_.Add(probes.size());
    mc_hits_counter_.Add(static_cast<uint64_t>(hits));
    const double annulus = M_PI * (outer * outer - inner * inner);
    if (per_level > 0) {
      // The out-of-box share of the annulus contributes no area.
      area += annulus * hits / per_level;
    }
    outer = inner;
  }
  // The innermost disc is t's immediate neighborhood: count it as owned.
  area += M_PI * outer * outer;
  return area;
}

void NnoProbeResolver::ResolveRound(const EvidenceDemand& demand,
                                    EvidenceStore* store) {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  const Box& box = client_->region();
  const Vec2 q = box.SamplePoint(rng_);
  store->BeginRound(q);
  const std::vector<LrClient::Item> items = client_->Query(q);
  if (!items.empty()) {
    // Top-1 only — the remaining k-1 results are discarded by this method.
    const LrClient::Item& top = items.front();
    if (demand.WantsProbeTuple(*client_, top.id, top.location)) {
      const uint64_t queries_before = client_->queries_used();
      double area = 0.0;
      {
        obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
        area = EstimateCellArea(top.id, top.location);
      }
      Observation obs;
      obs.tuple_id = top.id;
      obs.rank = 1;
      obs.h = 1;
      obs.location = top.location;
      obs.has_location = true;
      obs.weight_form = WeightForm::kInverseProbability;
      obs.weight = box.Area() / area;
      obs.exact = false;  // heuristic disc growth + Monte-Carlo membership
      obs.cost = client_->queries_used() - queries_before;
      store->Append(obs);
    }
  }
  store->EndRound(client_->queries_used());
}

std::string NnoProbeResolver::diagnostics_json() const {
  JsonWriter json;
  json.BeginObject()
      .KV("resolver", "nno")
      .KV("rounds", static_cast<uint64_t>(diagnostics_.rounds))
      .KV("growth_rounds", diagnostics_.growth_rounds)
      .KV("mc_probes", diagnostics_.mc_probes)
      .KV("mc_hits", diagnostics_.mc_hits)
      .EndObject();
  return json.TakeString();
}

void NnoProbeResolver::SaveState(std::string* out) const {
  BinaryWriter w(out);
  SaveResolverHeader(&w, kNnoResolverTag);
  SaveRngState(&w, rng_);
  w.PutU64(diagnostics_.rounds);
  w.PutU64(diagnostics_.growth_rounds);
  w.PutU64(diagnostics_.mc_probes);
  w.PutU64(diagnostics_.mc_hits);
}

bool NnoProbeResolver::RestoreState(std::string_view blob) {
  BinaryReader r(blob);
  if (!CheckResolverHeader(&r, kNnoResolverTag)) return false;
  if (!RestoreRngState(&r, &rng_)) return false;
  uint64_t rounds;
  if (!r.GetU64(&rounds) || !r.GetU64(&diagnostics_.growth_rounds) ||
      !r.GetU64(&diagnostics_.mc_probes) || !r.GetU64(&diagnostics_.mc_hits)) {
    return false;
  }
  diagnostics_.rounds = rounds;
  return r.ok() && r.remaining() == 0;
}

}  // namespace engine
}  // namespace lbsagg
