// lbsagg_wal — inspector for durable evidence log directories
// (engine/log/, DESIGN.md §4.14). Read-only: it never truncates or repairs.
//
//   lbsagg_wal stats  <dir>   segment/checkpoint inventory + round totals
//   lbsagg_wal verify <dir>   exit 0 iff the log is clean (no torn tail,
//                             no corrupt checkpoints) — the CI durability
//                             job's post-crash assertion is `! verify` on a
//                             killed run and `verify` after resume
//   lbsagg_wal dump   <dir>   every intact record, one line each
//
// The torn tail is reported, not an error, for `stats` and `dump`: a log a
// crash just tore is a *healthy* input to recovery.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "engine/log/checkpoint.h"
#include "engine/log/wal.h"

namespace lbsagg {
namespace engine {
namespace {

const char* WeightFormName(WeightForm form) {
  switch (form) {
    case WeightForm::kInverseProbability:
      return "inv-prob";
    case WeightForm::kProbability:
      return "prob";
  }
  return "?";
}

void PrintSegments(const WalReadResult& wal) {
  for (size_t i = 0; i < wal.segments.size(); ++i) {
    const WalSegmentInfo& seg = wal.segments[i];
    std::printf("segment %zu: %s  start_round=%" PRIu64
                "  bytes=%" PRIu64 " (%" PRIu64 " valid)  records=%" PRIu64
                "%s\n",
                i, seg.path.c_str(), seg.start_round, seg.file_bytes,
                seg.valid_bytes, seg.records,
                i >= wal.valid_segments ? "  [unusable]" : "");
  }
}

void PrintCheckpoints(const std::string& dir) {
  for (const CheckpointScanEntry& entry : ScanCheckpoints(dir)) {
    if (!entry.valid) {
      std::printf("checkpoint %s: CORRUPT\n", entry.path.c_str());
      continue;
    }
    std::printf("checkpoint %s: round=%" PRIu64 " observations=%" PRIu64
                " queries=%" PRIu64 " resolver=%s%s aggregates=%zu\n",
                entry.path.c_str(), entry.data.round, entry.data.observations,
                entry.data.queries_used, entry.data.resolver_name.c_str(),
                entry.data.memo_hash != 0 ? " [warm memo: non-resumable]" : "",
                entry.data.aggregates.size());
    for (const AggregateCheckpoint& agg : entry.data.aggregates) {
      std::printf("  aggregate %s: estimate=%.17g trace=%016" PRIx64 "\n",
                  agg.name.c_str(), agg.estimate, agg.trace_hash);
    }
  }
}

int RunStats(const std::string& dir) {
  WalReadResult wal = ReadWal(dir);
  if (!wal.error.empty()) {
    std::fprintf(stderr, "error: %s\n", wal.error.c_str());
    return 1;
  }
  std::printf("wal dir: %s\n", dir.c_str());
  PrintSegments(wal);
  std::printf("committed rounds: %zu (%zu observations)\n",
              wal.evidence.NumRounds(), wal.evidence.NumObservations());
  if (wal.evidence.NumRounds() > 0) {
    const EvidenceRound& last =
        wal.evidence.Round(wal.evidence.NumRounds() - 1);
    std::printf("queries after last commit: %" PRIu64 "\n",
                last.queries_after);
  }
  std::printf("torn tail: %" PRIu64 " bytes%s\n", wal.torn_bytes,
              wal.torn_round ? " (uncommitted round)" : "");
  PrintCheckpoints(dir);
  return 0;
}

int RunVerify(const std::string& dir) {
  WalReadResult wal = ReadWal(dir);
  if (!wal.error.empty()) {
    std::fprintf(stderr, "error: %s\n", wal.error.c_str());
    return 1;
  }
  int problems = 0;
  if (wal.valid_segments != wal.segments.size()) {
    std::printf("FAIL: %zu of %zu segments unusable\n",
                wal.segments.size() - wal.valid_segments,
                wal.segments.size());
    ++problems;
  }
  if (wal.torn_bytes > 0) {
    std::printf("FAIL: torn tail of %" PRIu64 " bytes%s\n", wal.torn_bytes,
                wal.torn_round ? " (uncommitted round)" : "");
    ++problems;
  }
  uint64_t covered = 0, corrupt = 0, total = 0;
  for (const CheckpointScanEntry& entry : ScanCheckpoints(dir)) {
    ++total;
    if (!entry.valid) {
      std::printf("FAIL: corrupt checkpoint %s\n", entry.path.c_str());
      ++corrupt;
      continue;
    }
    if (entry.data.round > wal.evidence.NumRounds()) {
      std::printf("FAIL: checkpoint %s at round %" PRIu64
                  " past the %zu committed rounds\n",
                  entry.path.c_str(), entry.data.round,
                  wal.evidence.NumRounds());
      ++problems;
      continue;
    }
    ++covered;
  }
  problems += static_cast<int>(corrupt);
  std::printf("%s: %zu rounds, %zu segments, %" PRIu64 "/%" PRIu64
              " checkpoints usable\n",
              problems == 0 ? "OK" : "CORRUPT", wal.evidence.NumRounds(),
              wal.segments.size(), covered, total);
  return problems == 0 ? 0 : 2;
}

int RunDump(const std::string& dir) {
  WalReadResult wal = ReadWal(dir, /*keep_records=*/true);
  if (!wal.error.empty()) {
    std::fprintf(stderr, "error: %s\n", wal.error.c_str());
    return 1;
  }
  for (const WalRecord& rec : wal.records) {
    switch (rec.type) {
      case WalRecordType::kBeginRound:
        std::printf("%zu@%-8" PRIu64 " begin  round=%" PRIu64
                    " sample=(%.17g, %.17g)\n",
                    rec.segment, rec.offset, rec.begin.round,
                    rec.begin.sample_point.x, rec.begin.sample_point.y);
        break;
      case WalRecordType::kObservation:
        std::printf("%zu@%-8" PRIu64 " obs    tuple=%d rank=%d h=%d "
                    "weight=%.17g (%s)%s cost=%" PRIu64 "\n",
                    rec.segment, rec.offset, rec.observation.tuple_id,
                    rec.observation.rank, rec.observation.h,
                    rec.observation.weight,
                    WeightFormName(rec.observation.weight_form),
                    rec.observation.exact ? " exact" : "", rec.observation.cost);
        break;
      case WalRecordType::kEndRound:
        std::printf("%zu@%-8" PRIu64 " end    round=%" PRIu64
                    " queries_after=%" PRIu64 " observations=%" PRIu64 "\n",
                    rec.segment, rec.offset, rec.end.round,
                    rec.end.queries_after, rec.end.num_observations);
        break;
    }
  }
  if (wal.torn_bytes > 0) {
    std::printf("-- torn tail: %" PRIu64 " bytes%s\n", wal.torn_bytes,
                wal.torn_round ? " (uncommitted round)" : "");
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: lbsagg_wal <stats|verify|dump> <wal-dir>\n"
                 "inspect a durable evidence log (read-only)\n");
    return 1;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "stats") return RunStats(dir);
  if (mode == "verify") return RunVerify(dir);
  if (mode == "dump") return RunDump(dir);
  std::fprintf(stderr, "error: unknown mode '%s'\n", mode.c_str());
  return 1;
}

}  // namespace
}  // namespace engine
}  // namespace lbsagg

int main(int argc, char** argv) { return lbsagg::engine::Main(argc, argv); }
