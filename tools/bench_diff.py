#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag regressions.

Handles both baseline shapes used in this repo:

  * curated files (BENCH_hotpath.json, BENCH_shard.json,
    BENCH_service.json): nested objects of named numeric leaves —
    flattened to dotted paths like
    "n=10000000.build.shards=16.speedup_vs_single" or
    "load.dedup=on.latency_p99_ms";
  * raw google-benchmark dumps (BENCH_transport.json, BENCH_engine.json):
    the "benchmarks" array — each entry becomes "<name>.real_time" /
    "<name>.items_per_second" etc., keyed by the benchmark's name.

Direction is inferred from the metric name: *_ms / *_ns / *time* / latency /
error are lower-is-better; qps / speedup / items_per_second / throughput are
higher-is-better. Anything unrecognized is compared both ways and only
reported informationally. Metrics present in one file but not the other are
listed, never fatal — curves legitimately grow new points.

Exit status: 0 when no tracked metric regressed beyond --threshold
(default 10%), 1 otherwise. --warn-only always exits 0 (CI drift monitor
mode). Stdlib only.
"""

import argparse
import json
import sys

LOWER_BETTER = ("_ms", "_ns", "_s", "time", "latency", "error", "cost",
                "cpu", "queries", "wait")
HIGHER_BETTER = ("qps", "speedup", "items_per_second", "bytes_per_second",
                 "throughput", "hits", "rate")

# Context/metadata keys that are machine facts, not measurements.
SKIP_KEYS = {"date", "num_cpus", "mhz_per_cpu", "load_avg", "caches",
             "context", "about", "budget", "runs", "config"}


def direction(path):
    """-1: lower is better, +1: higher is better, 0: untracked."""
    leaf = path.rsplit(".", 1)[-1].lower()
    for token in HIGHER_BETTER:
        if token in leaf:
            return +1
    for token in LOWER_BETTER:
        if leaf.endswith(token) or token in leaf:
            return -1
    return 0


def flatten(node, prefix, out):
    if isinstance(node, dict):
        if "benchmarks" in node and isinstance(node["benchmarks"], list):
            for bench in node["benchmarks"]:
                name = bench.get("name", "?")
                for key, value in bench.items():
                    if isinstance(value, (int, float)) and key != "name":
                        out[f"{name}.{key}"] = float(value)
            node = {k: v for k, v in node.items() if k != "benchmarks"}
        for key, value in node.items():
            if key in SKIP_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else key
            flatten(value, path, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    flatten(data, "", out)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression to flag (default 0.10)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report but always exit 0")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if not base:
        print(f"bench_diff: no numeric metrics in {args.baseline}",
              file=sys.stderr)
        return 2

    regressions, improvements, drifts = [], [], []
    for path in sorted(set(base) & set(cand)):
        b, c = base[path], cand[path]
        if b == c:
            continue
        rel = (c - b) / abs(b) if b != 0 else float("inf")
        sense = direction(path)
        line = f"{path}: {b:g} -> {c:g} ({rel:+.1%})"
        if sense == 0:
            drifts.append(line)
        elif abs(rel) < args.threshold:
            continue
        elif rel * sense < 0:
            regressions.append(line)
        else:
            improvements.append(line)

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    for title, lines in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("untracked drift", drifts),
                         ("only in baseline", only_base),
                         ("only in candidate", only_cand)):
        if lines:
            print(f"== {title} ({len(lines)}) ==")
            for line in lines:
                print(f"  {line}")

    if not (regressions or improvements or drifts or only_base or only_cand):
        print(f"bench_diff: {len(base.keys() & cand.keys())} metrics, "
              "no change beyond threshold")
    if regressions and not args.warn_only:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
