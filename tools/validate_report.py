#!/usr/bin/env python3
"""Validate a RunReport JSON artifact against tools/report_schema.json.

Usage:
    tools/validate_report.py report.json [--require-layers client,spatial,estimator,transport]

Implements the schema contract with the standard library only (the
container has no jsonschema package); tools/report_schema.json is the
authoritative statement of the same contract — keep the two in sync.

With --require-layers, additionally checks that the metric plane covers the
named layers: each layer must contribute at least one `<layer>.` counter,
except `transport`, `engine`, `service`, `timeseries`, and `introspection`,
which may instead appear as the matching sections.<layer> block (the
subsystems' JSON side-channels). This is what the CI observability job runs
against examples/flaky_service --report, examples/multi_aggregate --report,
and the fig19_service run report.
"""

import argparse
import json
import sys

NUMBER = (int, float)
STATS_FIELDS = ["count", "mean", "stddev", "se", "ci95_half_width", "min", "max"]


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def check_number(errors, path, value, minimum=None):
    if isinstance(value, bool) or not isinstance(value, NUMBER):
        fail(errors, path, f"expected a number, got {type(value).__name__}")
        return
    if minimum is not None and value < minimum:
        fail(errors, path, f"expected >= {minimum}, got {value}")


def check_count(errors, path, value):
    if isinstance(value, bool) or not isinstance(value, int):
        fail(errors, path, f"expected an integer, got {type(value).__name__}")
        return
    if value < 0:
        fail(errors, path, f"expected >= 0, got {value}")


def validate(report):
    errors = []
    if not isinstance(report, dict):
        return ["top level: expected an object"]

    for key in ["schema_version", "meta", "stats", "metrics", "sections"]:
        if key not in report:
            fail(errors, "top level", f"missing required key '{key}'")
    if errors:
        return errors

    if report["schema_version"] != 1:
        fail(errors, "schema_version", f"expected 1, got {report['schema_version']!r}")

    meta = report["meta"]
    if not isinstance(meta, dict):
        fail(errors, "meta", "expected an object")
    else:
        for key, value in meta.items():
            if isinstance(value, bool) or not isinstance(value, (str, *NUMBER)):
                fail(errors, f"meta.{key}", "expected a string or number")

    stats = report["stats"]
    if not isinstance(stats, dict):
        fail(errors, "stats", "expected an object")
    else:
        for name, block in stats.items():
            path = f"stats.{name}"
            if not isinstance(block, dict):
                fail(errors, path, "expected an object")
                continue
            for field in STATS_FIELDS:
                if field not in block:
                    fail(errors, path, f"missing field '{field}'")
            if "count" in block:
                check_count(errors, f"{path}.count", block["count"])
            for field in ["stddev", "se", "ci95_half_width"]:
                if field in block:
                    check_number(errors, f"{path}.{field}", block[field], minimum=0)
            for field in ["mean", "min", "max"]:
                if field in block:
                    check_number(errors, f"{path}.{field}", block[field])

    metrics = report["metrics"]
    if not isinstance(metrics, dict):
        fail(errors, "metrics", "expected an object")
    else:
        for key in ["counters", "gauges", "histograms"]:
            if key not in metrics:
                fail(errors, "metrics", f"missing required key '{key}'")
        for name, value in metrics.get("counters", {}).items():
            check_count(errors, f"metrics.counters.{name}", value)
        for name, value in metrics.get("gauges", {}).items():
            check_number(errors, f"metrics.gauges.{name}", value)
        for name, hist in metrics.get("histograms", {}).items():
            path = f"metrics.histograms.{name}"
            if not isinstance(hist, dict):
                fail(errors, path, "expected an object")
                continue
            for field in ["count", "sum", "bounds", "buckets"]:
                if field not in hist:
                    fail(errors, path, f"missing field '{field}'")
            if "count" in hist:
                check_count(errors, f"{path}.count", hist["count"])
            if "sum" in hist:
                check_number(errors, f"{path}.sum", hist["sum"])
            bounds = hist.get("bounds", [])
            buckets = hist.get("buckets", [])
            if not isinstance(bounds, list) or not all(
                not isinstance(b, bool) and isinstance(b, NUMBER) for b in bounds
            ):
                fail(errors, f"{path}.bounds", "expected an array of numbers")
            elif bounds != sorted(bounds):
                fail(errors, f"{path}.bounds", "expected ascending bounds")
            if not isinstance(buckets, list):
                fail(errors, f"{path}.buckets", "expected an array")
            else:
                for i, b in enumerate(buckets):
                    check_count(errors, f"{path}.buckets[{i}]", b)
                if isinstance(bounds, list) and len(buckets) != len(bounds) + 1:
                    fail(
                        errors,
                        f"{path}.buckets",
                        f"expected {len(bounds) + 1} buckets "
                        f"(bounds + overflow), got {len(buckets)}",
                    )
                if "count" in hist and isinstance(hist["count"], int) and all(
                    isinstance(b, int) for b in buckets
                ):
                    if sum(buckets) != hist["count"]:
                        fail(
                            errors,
                            f"{path}.buckets",
                            f"bucket sum {sum(buckets)} != count {hist['count']}",
                        )

    sections = report["sections"]
    if not isinstance(sections, dict):
        fail(errors, "sections", "expected an object")
    else:
        if "engine" in sections:
            validate_engine_section(errors, sections["engine"])
        if "service" in sections:
            validate_service_section(errors, sections["service"])
        if "timeseries" in sections:
            validate_timeseries_section(errors, sections["timeseries"])
        if "introspection" in sections:
            validate_introspection_section(errors, sections["introspection"])

    return errors


def validate_engine_section(errors, engine):
    """The estimation engine's diagnostics_json (DESIGN.md §4.9): resolver
    diagnostics + evidence-store totals + registered aggregate count."""
    path = "sections.engine"
    if not isinstance(engine, dict):
        fail(errors, path, "expected an object")
        return
    for key in ["resolver", "evidence", "aggregates"]:
        if key not in engine:
            fail(errors, path, f"missing required key '{key}'")
    if "resolver" in engine and not isinstance(engine["resolver"], dict):
        fail(errors, f"{path}.resolver", "expected an object")
    if "aggregates" in engine:
        check_count(errors, f"{path}.aggregates", engine["aggregates"])
    evidence = engine.get("evidence")
    if evidence is not None:
        if not isinstance(evidence, dict):
            fail(errors, f"{path}.evidence", "expected an object")
        else:
            for key in ["rounds", "observations", "queries"]:
                if key not in evidence:
                    fail(errors, f"{path}.evidence", f"missing field '{key}'")
                else:
                    check_count(errors, f"{path}.evidence.{key}", evidence[key])


def validate_service_section(errors, service):
    """EstimationService::diagnostics_json (DESIGN.md §4.12): session
    lifecycle tallies + admission configuration + per-backend dedup."""
    path = "sections.service"
    if not isinstance(service, dict):
        fail(errors, path, "expected an object")
        return
    for key in ["sessions", "queued", "active", "slices", "admission",
                "dispatcher_workers", "dedup"]:
        if key not in service:
            fail(errors, path, f"missing required key '{key}'")
    sessions = service.get("sessions")
    if sessions is not None:
        if not isinstance(sessions, dict):
            fail(errors, f"{path}.sessions", "expected an object")
        else:
            for key in ["submitted", "completed", "rejected", "cancelled",
                        "deadline_exceeded"]:
                if key not in sessions:
                    fail(errors, f"{path}.sessions", f"missing field '{key}'")
                else:
                    check_count(errors, f"{path}.sessions.{key}", sessions[key])
    for key in ["queued", "active", "slices", "dispatcher_workers"]:
        if key in service:
            check_count(errors, f"{path}.{key}", service[key])
    admission = service.get("admission")
    if admission is not None:
        if not isinstance(admission, dict):
            fail(errors, f"{path}.admission", "expected an object")
        else:
            policy = admission.get("policy")
            if policy not in ("fifo", "fair_share"):
                fail(errors, f"{path}.admission.policy",
                     f"expected 'fifo' or 'fair_share', got {policy!r}")
            for key in ["queue_capacity", "max_active"]:
                if key not in admission:
                    fail(errors, f"{path}.admission", f"missing field '{key}'")
                else:
                    check_count(errors, f"{path}.admission.{key}",
                                admission[key])
    dedup = service.get("dedup")
    if dedup is not None:
        if not isinstance(dedup, list):
            fail(errors, f"{path}.dedup", "expected an array")
        else:
            for i, entry in enumerate(dedup):
                entry_path = f"{path}.dedup[{i}]"
                if not isinstance(entry, dict):
                    fail(errors, entry_path, "expected an object")
                    continue
                for key in ["entries", "lookups", "hits", "saved_queries"]:
                    if key not in entry:
                        fail(errors, entry_path, f"missing field '{key}'")
                    else:
                        check_count(errors, f"{entry_path}.{key}", entry[key])


def validate_timeseries_section(errors, ts):
    """TimeSeriesSampler::ToJson (DESIGN.md §4.13): the sliding ring of
    per-period metric windows. The LBSAGG_OBS_DISABLED stub emits
    period_ms 0 and an empty ring, which is valid."""
    path = "sections.timeseries"
    if not isinstance(ts, dict):
        fail(errors, path, "expected an object")
        return
    for key in ["period_ms", "windows_cut", "windows"]:
        if key not in ts:
            fail(errors, path, f"missing required key '{key}'")
    if "period_ms" in ts:
        check_number(errors, f"{path}.period_ms", ts["period_ms"], minimum=0)
    if "windows_cut" in ts:
        check_count(errors, f"{path}.windows_cut", ts["windows_cut"])
    windows = ts.get("windows")
    if windows is None:
        return
    if not isinstance(windows, list):
        fail(errors, f"{path}.windows", "expected an array")
        return
    for i, w in enumerate(windows):
        wpath = f"{path}.windows[{i}]"
        if not isinstance(w, dict):
            fail(errors, wpath, "expected an object")
            continue
        for key in ["t0_ms", "t1_ms", "counters", "gauges", "histograms"]:
            if key not in w:
                fail(errors, wpath, f"missing field '{key}'")
        for key in ["t0_ms", "t1_ms"]:
            if key in w:
                check_number(errors, f"{wpath}.{key}", w[key])
        for name, value in w.get("counters", {}).items():
            check_count(errors, f"{wpath}.counters.{name}", value)
        for name, value in w.get("gauges", {}).items():
            check_number(errors, f"{wpath}.gauges.{name}", value)
        for name, digest in w.get("histograms", {}).items():
            hpath = f"{wpath}.histograms.{name}"
            if not isinstance(digest, dict):
                fail(errors, hpath, "expected an object")
                continue
            for key in ["count", "sum", "p50", "p99"]:
                if key not in digest:
                    fail(errors, hpath, f"missing field '{key}'")
            if "count" in digest:
                check_count(errors, f"{hpath}.count", digest["count"])
            for key in ["sum", "p50", "p99"]:
                if key in digest:
                    check_number(errors, f"{hpath}.{key}", digest[key])


def validate_introspection_section(errors, intro):
    """Flight-recorder tallies (FlightRecorder::StatsJson) and SLO-watchdog
    verdict counts (DESIGN.md §4.13)."""
    path = "sections.introspection"
    if not isinstance(intro, dict):
        fail(errors, path, "expected an object")
        return
    if "flight_recorder" not in intro:
        fail(errors, path, "missing required key 'flight_recorder'")
    recorder = intro.get("flight_recorder")
    if recorder is not None:
        if not isinstance(recorder, dict):
            fail(errors, f"{path}.flight_recorder", "expected an object")
        else:
            for key in ["capacity", "published", "dropped", "drained"]:
                if key not in recorder:
                    fail(errors, f"{path}.flight_recorder",
                         f"missing field '{key}'")
                else:
                    check_count(errors, f"{path}.flight_recorder.{key}",
                                recorder[key])
    watchdog = intro.get("watchdog")
    if watchdog is not None:
        if not isinstance(watchdog, dict):
            fail(errors, f"{path}.watchdog", "expected an object")
        else:
            for key in ["stalled_fired", "deadline_fired"]:
                if key not in watchdog:
                    fail(errors, f"{path}.watchdog", f"missing field '{key}'")
                else:
                    check_count(errors, f"{path}.watchdog.{key}",
                                watchdog[key])


def check_layers(report, layers):
    errors = []
    counters = report.get("metrics", {}).get("counters", {})
    sections = report.get("sections", {})
    section_layers = ("transport", "engine", "service", "timeseries",
                      "introspection")
    for layer in layers:
        covered = any(name.startswith(layer + ".") for name in counters)
        if layer in section_layers:
            covered = covered or layer in sections
        if not covered:
            errors.append(
                f"layer coverage: no '{layer}.' counters"
                + (
                    f" and no sections.{layer}"
                    if layer in section_layers
                    else ""
                )
            )
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to the RunReport JSON file")
    parser.add_argument(
        "--require-layers",
        default="",
        help="comma-separated layers that must appear in the metric plane",
    )
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.report}: {e}", file=sys.stderr)
        return 1

    errors = validate(report)
    layers = [l.strip() for l in args.require_layers.split(",") if l.strip()]
    if not errors and layers:
        errors = check_layers(report, layers)

    if errors:
        for error in errors:
            print(f"{args.report}: {error}", file=sys.stderr)
        return 1
    print(f"{args.report}: valid run report (schema_version 1)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
