// lbsagg_cli — run the paper's estimators against a simulated LBS from the
// command line.
//
// Examples:
//   lbsagg_cli --dataset=usa --n=20000 --algorithm=lr --aggregate=count \
//              --where=category=school --budget=10000 --runs=5
//   lbsagg_cli --dataset=points.csv --algorithm=lnr --aggregate=avg \
//              --column=rating --budget=20000
//   lbsagg_cli --dataset=usa --n=5000 --export=usa.csv

#include <csignal>
#include <cstdio>
#include <sstream>
#include <memory>
#include <optional>
#include <string>

#include "core/aggregate.h"
#include "engine/engine.h"
#include "engine/lnr_resolver.h"
#include "engine/log/durable_log.h"
#include "engine/lr_resolver.h"
#include "engine/nno_resolver.h"
#include "core/lnr_agg.h"
#include "core/lr_agg.h"
#include "core/localize.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/dataset_io.h"
#include "lbs/server.h"
#include "lbs/sharded_server.h"
#include "obs/introspect/flight_recorder.h"
#include "obs/introspect/sampler.h"
#include "obs/metrics.h"
#include "service/introspect.h"
#include "service/service.h"
#include "service/watchdog.h"
#include "transport/sharded_transport.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

struct CliWorld {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<CensusGrid> census;
};

std::optional<CliWorld> BuildWorld(const FlagParser& flags) {
  const std::string source = flags.GetString("dataset");
  CliWorld world;
  if (source == "usa") {
    UsaOptions options;
    options.num_pois = static_cast<int>(flags.GetInt("n"));
    options.seed = static_cast<uint64_t>(flags.GetInt("scenario-seed"));
    UsaScenario usa = BuildUsaScenario(options);
    world.dataset = std::move(usa.dataset);
    world.census = std::make_unique<CensusGrid>(std::move(usa.census));
  } else if (source == "china") {
    ChinaOptions options;
    options.num_users = static_cast<int>(flags.GetInt("n"));
    options.seed = static_cast<uint64_t>(flags.GetInt("scenario-seed"));
    ChinaScenario china = BuildChinaScenario(options);
    world.dataset = std::move(china.dataset);
    world.census = std::make_unique<CensusGrid>(std::move(china.census));
  } else {
    std::string error;
    std::optional<Dataset> loaded = LoadDatasetCsv(source, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return std::nullopt;
    }
    world.dataset = std::make_unique<Dataset>(std::move(*loaded));
    Rng census_rng(1);
    world.census = std::make_unique<CensusGrid>(CensusGrid::FromPoints(
        world.dataset->box(), 40, 25, world.dataset->Positions(), 0.3,
        census_rng));
  }
  return world;
}

// Parses --where into a returned-tuple predicate + matching ground-truth
// filter. Supported: "col=value" (string equality) and "col" (bool true).
struct WhereClause {
  ReturnedTuplePredicate predicate;  // null = no condition
  TupleFilter filter;                // ground-truth twin
};

std::optional<WhereClause> ParseWhere(const Schema& schema,
                                      const std::string& where) {
  WhereClause clause;
  if (where.empty()) return clause;
  const size_t eq = where.find('=');
  const std::string column = where.substr(0, eq == std::string::npos
                                                 ? where.size()
                                                 : eq);
  const std::optional<int> col = schema.Find(column);
  if (!col.has_value()) {
    std::fprintf(stderr, "error: --where column '%s' not in dataset\n",
                 column.c_str());
    return std::nullopt;
  }
  if (eq == std::string::npos) {
    if (schema.type(*col) != AttrType::kBool) {
      std::fprintf(stderr, "error: --where=%s needs =value (not a bool)\n",
                   column.c_str());
      return std::nullopt;
    }
    clause.predicate = ColumnIsTrue(*col);
    const int c = *col;
    clause.filter = [c](const Tuple& t) { return std::get<bool>(t.values[c]); };
    return clause;
  }
  const std::string value = where.substr(eq + 1);
  if (schema.type(*col) != AttrType::kString) {
    std::fprintf(stderr, "error: --where equality needs a string column\n");
    return std::nullopt;
  }
  clause.predicate = ColumnEquals(*col, value);
  const int c = *col;
  clause.filter = [c, value](const Tuple& t) {
    return std::get<std::string>(t.values[c]) == value;
  };
  return clause;
}

// Writes `text` to `path`; "-" means stdout.
bool DumpText(const std::string& path, const std::string& text,
              const char* what) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s to %s\n", what, path.c_str());
  return true;
}

// --index: which SpatialIndex implementation answers the simulated
// service's kNN queries. Invisible in the results (all backends are
// bit-identical); visible in server-side build/query time at scale.
std::optional<SpatialBackend> ParseIndexFlag(const FlagParser& flags) {
  const std::string name = flags.GetString("index");
  const std::optional<SpatialBackend> backend = ParseSpatialBackend(name);
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: unknown --index=%s (choices: %s)\n",
                 name.c_str(), SpatialBackendChoices());
  }
  return backend;
}

// --localize=N: pick N random tuples of an LNR view of the dataset and
// recover their positions from ranked ids alone (§4.3).
int RunLocalize(const FlagParser& flags, Dataset& dataset,
                SpatialBackend backend) {
  const int targets = static_cast<int>(flags.GetInt("localize"));
  LbsServer server(&dataset, {.max_k = 1, .index_backend = backend});
  LnrClient client(&server, {.k = 1});
  Localizer localizer(&client);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  Table table({"tuple", "true position", "inferred position", "error",
               "queries"});
  std::vector<double> errors;
  int attempts = 0;
  while (static_cast<int>(errors.size()) < targets && attempts < 20 * targets) {
    ++attempts;
    const Vec2 q = dataset.box().SamplePoint(rng);
    const int id = client.Top1(q);
    if (id < 0) continue;
    const uint64_t before = client.queries_used();
    const std::optional<Vec2> pos = localizer.Locate(id, q);
    if (!pos.has_value()) continue;
    const Vec2& truth = dataset.tuple(id).pos;
    const double err = Distance(*pos, truth);
    errors.push_back(err);
    std::ostringstream t_os, p_os;
    t_os.precision(4);
    p_os.precision(4);
    t_os << truth;
    p_os << *pos;
    table.AddRow({Table::Int(id), t_os.str(), p_os.str(),
                  Table::Num(err, 5),
                  Table::Int(static_cast<long long>(client.queries_used() -
                                                    before))});
  }
  std::printf("Localization over a rank-only view of the dataset (§4.3):\n\n");
  table.Print();
  const Summary s = Summarize(errors);
  std::printf("\nlocated %zu tuples — median error %.5f, p95 %.5f\n", s.count,
              s.median, s.p95);
  return 0;
}

// --wal-dir: one engine-native run with the durable evidence log attached
// (DESIGN.md §4.14). --resume recovers the directory first and continues
// bit-identically; --kill-after-rounds SIGKILLs the process mid-run (the
// two-process crash harness), and the --fail-* flags drive the WAL's
// deterministic failure injection. The printed trace fingerprint is the
// bit-identity witness: a killed-and-resumed run must print the same
// fingerprint as an uninterrupted one.
int RunDurable(const FlagParser& flags, const AggregateSpec& spec,
               double truth, LbsServer& server, ShardedTransport* transport,
               const QuerySampler* sampler) {
  const std::string wal_dir = flags.GetString("wal-dir");
  const std::string algorithm = flags.GetString("algorithm");
  const int k = static_cast<int>(flags.GetInt("k"));
  const uint64_t budget = static_cast<uint64_t>(flags.GetInt("budget"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::unique_ptr<LbsClient> client;
  std::unique_ptr<engine::CellResolver> resolver;
  if (algorithm == "lr") {
    auto c = std::make_unique<LrClient>(&server, ClientOptions{.k = k,
                                                               .budget = budget},
                                        transport);
    LrAggOptions opts;
    opts.seed = seed;
    resolver = std::make_unique<engine::LrCellResolver>(c.get(), sampler, opts);
    client = std::move(c);
  } else if (algorithm == "lnr") {
    auto c = std::make_unique<LnrClient>(&server,
                                         ClientOptions{.k = k, .budget = budget});
    LnrAggOptions opts;
    opts.seed = seed;
    opts.cell.search.delta_fraction = 1e-6;
    opts.cell.search.delta_prime_fraction = 1e-4;
    resolver =
        std::make_unique<engine::LnrCellResolver>(c.get(), sampler, opts);
    client = std::move(c);
  } else if (algorithm == "nno") {
    auto c = std::make_unique<LrClient>(&server, ClientOptions{.k = k,
                                                               .budget = budget},
                                        transport);
    NnoOptions opts;
    opts.seed = seed;
    resolver = std::make_unique<engine::NnoProbeResolver>(c.get(), opts);
    client = std::move(c);
  } else {
    std::fprintf(stderr, "error: unknown --algorithm=%s\n", algorithm.c_str());
    return 1;
  }

  engine::EstimationEngine eng(resolver.get());
  engine::AggregateQuery* query = eng.AddAggregate(spec);

  uint64_t resumed_rounds = 0;
  if (flags.GetBool("resume")) {
    engine::RecoveredRun rec = engine::RecoverDurableRun(wal_dir);
    std::string error = rec.error;
    if (error.empty()) {
      eng.RestoreEvidence(rec.evidence);
      error = engine::ApplyCheckpoint(rec, &eng, client.get());
    }
    if (!error.empty()) {
      std::fprintf(stderr, "error: resume failed: %s\n", error.c_str());
      return 1;
    }
    resumed_rounds = eng.evidence().num_rounds();
    std::printf("resumed %s at round %llu (truncated %llu torn bytes, "
                "re-executing %llu rounds)\n",
                wal_dir.c_str(),
                static_cast<unsigned long long>(resumed_rounds),
                static_cast<unsigned long long>(rec.torn_bytes),
                static_cast<unsigned long long>(rec.discarded_rounds));
  }

  engine::DurableLogOptions log_options;
  log_options.dir = wal_dir;
  log_options.checkpoint_every_rounds =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every"));
  log_options.failpoint.drop_after_bytes =
      static_cast<uint64_t>(flags.GetInt("fail-after-bytes"));
  log_options.failpoint.fail_fsync_at =
      static_cast<uint64_t>(flags.GetInt("fail-fsync-at"));
  engine::DurableEvidenceLog wal(log_options, &eng, client.get());
  if (!wal.ok()) {
    std::fprintf(stderr, "error: durable log failed: %s\n",
                 wal.error().c_str());
    return 1;
  }

  const long long kill_after = flags.GetInt("kill-after-rounds");
  if (kill_after > 0) {
    // Crash harness: run N rounds, then die the hard way — no Close, no
    // final checkpoint, no destructors. Whatever the fsync policy persisted
    // is what recovery gets.
    size_t executed = 0;
    while (eng.queries_used() < budget) {
      eng.Step();
      wal.MaybeCheckpoint();
      if (++executed >= static_cast<size_t>(kill_after)) {
        std::printf("killing process after %zu rounds\n", executed);
        std::fflush(stdout);
        std::raise(SIGKILL);
      }
    }
    wal.Close();
  } else {
    RunEngineWithBudget(&eng, &wal, budget);
  }

  std::printf("%s over %s, durable %s run, k=%d, budget %llu, wal %s\n",
              spec.name.c_str(), flags.GetString("dataset").c_str(),
              algorithm.c_str(), k, static_cast<unsigned long long>(budget),
              wal_dir.c_str());
  std::printf("final estimate   : %.17g\n", query->Estimate());
  std::printf("ground truth     : %.2f (simulator-only knowledge)\n", truth);
  std::printf("queries          : %llu\n",
              static_cast<unsigned long long>(eng.queries_used()));
  std::printf("rounds           : %zu (%llu new this process)\n",
              eng.evidence().num_rounds(),
              static_cast<unsigned long long>(eng.evidence().num_rounds() -
                                              resumed_rounds));
  std::printf("trace fingerprint: %016llx\n",
              static_cast<unsigned long long>(
                  engine::TraceFingerprint(query->trace())));
  const engine::WalWriterStats& stats = wal.wal_stats();
  std::printf("wal              : %llu records, %llu bytes, %llu fsyncs, "
              "%llu rotations, %llu checkpoints\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.fsyncs),
              static_cast<unsigned long long>(stats.rotations),
              static_cast<unsigned long long>(wal.checkpoints_written()));
  return 0;
}

int Run(const FlagParser& flags) {
  std::optional<CliWorld> world = BuildWorld(flags);
  if (!world.has_value()) return 1;
  Dataset& dataset = *world->dataset;

  const std::optional<SpatialBackend> backend = ParseIndexFlag(flags);
  if (!backend.has_value()) return 1;

  if (flags.GetInt("localize") > 0) {
    return RunLocalize(flags, dataset, *backend);
  }

  const std::string export_path = flags.GetString("export");
  if (!export_path.empty()) {
    if (!SaveDatasetCsv(dataset, export_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", export_path.c_str());
      return 1;
    }
    std::printf("wrote %zu tuples to %s\n", dataset.size(),
                export_path.c_str());
    return 0;
  }

  const std::optional<WhereClause> where =
      ParseWhere(dataset.schema(), flags.GetString("where"));
  if (!where.has_value()) return 1;

  // Aggregate spec + ground truth.
  const std::string aggregate = flags.GetString("aggregate");
  const std::string column = flags.GetString("column");
  AggregateSpec spec;
  double truth = 0.0;
  if (aggregate == "count") {
    spec = where->predicate
               ? AggregateSpec::CountWhere(where->predicate, "COUNT")
               : AggregateSpec::Count();
    truth = dataset.GroundTruthCount(where->filter);
  } else if (aggregate == "sum" || aggregate == "avg") {
    const std::optional<int> col = dataset.schema().Find(column);
    if (!col.has_value() ||
        dataset.schema().type(*col) != AttrType::kDouble) {
      std::fprintf(stderr, "error: --aggregate=%s needs --column=<double>\n",
                   aggregate.c_str());
      return 1;
    }
    const int c = *col;
    const auto value_of = [c](const Tuple& t) {
      return std::get<double>(t.values[c]);
    };
    if (aggregate == "sum") {
      spec = where->predicate
                 ? AggregateSpec::SumWhere(*col, where->predicate, "SUM")
                 : AggregateSpec::Sum(*col, "SUM");
      truth = dataset.GroundTruthSum(where->filter, value_of);
    } else {
      spec = where->predicate
                 ? AggregateSpec::AvgWhere(*col, where->predicate, "AVG")
                 : AggregateSpec::Avg(*col, "AVG");
      const double count = dataset.GroundTruthCount(where->filter);
      truth = count > 0 ? dataset.GroundTruthSum(where->filter, value_of) /
                              count
                        : 0.0;
    }
  } else {
    std::fprintf(stderr, "error: unknown --aggregate=%s\n", aggregate.c_str());
    return 1;
  }

  const int k = static_cast<int>(flags.GetInt("k"));
  const int shards = static_cast<int>(flags.GetInt("shards"));
  const std::string algorithm = flags.GetString("algorithm");
  if (shards > 1 && algorithm == "lnr") {
    std::fprintf(stderr,
                 "error: --shards needs a transport-capable client "
                 "(--algorithm=lr or nno)\n");
    return 1;
  }
  // With --shards the per-shard indexes answer every query; the monolithic
  // server is metadata-only, so the brute backend skips a duplicate index
  // build (DESIGN.md §4.11).
  LbsServer server(&dataset,
                   {.max_k = std::max(k, 1),
                    .index_backend =
                        shards > 1 ? SpatialBackend::kBruteForce : *backend});
  std::unique_ptr<ShardedLbsServer> sharded;
  std::unique_ptr<ShardedTransport> transport;
  if (shards > 1) {
    sharded = std::make_unique<ShardedLbsServer>(
        &dataset, ShardedServerOptions{
                      .num_shards = shards,
                      .server = {.max_k = std::max(k, 1),
                                 .index_backend = *backend}});
    transport = std::make_unique<ShardedTransport>(sharded.get());
  }
  std::unique_ptr<QuerySampler> sampler;
  if (flags.GetString("sampler") == "uniform") {
    sampler = std::make_unique<UniformSampler>(dataset.box());
  } else {
    sampler = std::make_unique<CensusSampler>(world->census.get());
  }

  const uint64_t budget = static_cast<uint64_t>(flags.GetInt("budget"));
  const int runs = static_cast<int>(flags.GetInt("runs"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  // --wal-dir: durable single-run path (WAL + checkpoints + resume).
  if (flags.GetBool("resume") && flags.GetString("wal-dir").empty()) {
    std::fprintf(stderr, "error: --resume needs --wal-dir\n");
    return 1;
  }
  if (!flags.GetString("wal-dir").empty()) {
    return RunDurable(flags, spec, truth, server, transport.get(),
                      sampler.get());
  }

  // --sessions: the same estimator fleet, but hosted — every run becomes a
  // session of one EstimationService (DESIGN.md §4.12), time-sliced against
  // its siblings behind a shared cross-session dedup wire. Estimates are
  // bit-identical to the sequential path; the service additionally reports
  // the interface queries dedup kept off the backend.
  const int sessions = static_cast<int>(flags.GetInt("sessions"));
  if (sessions > 0) {
    service::EstimatorFamily family;
    if (algorithm == "lr") {
      family = service::EstimatorFamily::kLr;
    } else if (algorithm == "lnr") {
      family = service::EstimatorFamily::kLnr;
    } else if (algorithm == "nno") {
      family = service::EstimatorFamily::kNno;
    } else {
      std::fprintf(stderr, "error: unknown --algorithm=%s\n",
                   algorithm.c_str());
      return 1;
    }

    // --statusz / --prom turn on the live introspection plane (DESIGN.md
    // §4.13): a private metric registry, a flight recorder on the session
    // event stream, a time-series sampler ticking on the service clock, and
    // an SLO watchdog — all observation-only, so the fleet's estimates stay
    // bit-identical with the plane attached.
    const std::string statusz_path = flags.GetString("statusz");
    const std::string prom_path = flags.GetString("prom");
    const bool introspect = !statusz_path.empty() || !prom_path.empty();
    obs::MetricsRegistry registry;
    obs::introspect::FlightRecorder recorder(4096);

    service::ServiceOptions sopts;
    sopts.admission.queue_capacity = static_cast<size_t>(sessions) + 1;
    sopts.admission.max_active =
        std::min<size_t>(static_cast<size_t>(sessions), 16);
    sopts.dispatcher_workers = 4;
    if (introspect) {
      sopts.registry = &registry;
      sopts.recorder = &recorder;
    }
    service::EstimationService svc({{.meta = &server,
                                     .wire = transport.get()}},
                                   sopts);

    obs::introspect::TimeSeriesSampler ts(
        {.registry = &registry,
         .clock_ms = [&svc] { return svc.NowMs(); },
         .period_ms = 100.0});
    service::SloWatchdog watchdog(&svc);

    std::vector<service::SessionId> ids;
    for (int r = 0; r < sessions; ++r) {
      service::SessionSpec session;
      session.family = family;
      session.aggregates = {spec};
      session.k = k;
      session.budget = budget;
      session.seed = seed + static_cast<uint64_t>(r);
      session.sampler = sampler.get();
      session.lnr.cell.search.delta_fraction = 1e-6;
      session.lnr.cell.search.delta_prime_fraction = 1e-4;
      ids.push_back(svc.Submit(session));
    }
    if (introspect) {
      while (svc.RunSlice()) {
        ts.MaybeTick();
        watchdog.Check();
      }
      ts.Tick();  // cut the final partial window
    } else {
      svc.RunUntilIdle();
    }

    Table stable({"session", "state", "estimate", "queries", "dedup hits"});
    RunningStats estimates;
    for (size_t i = 0; i < ids.size(); ++i) {
      const service::SessionStatus done = svc.Poll(ids[i]);
      if (done.state == service::SessionState::kCompleted) {
        estimates.Add(done.results[0].final_estimate);
      }
      stable.AddRow(
          {Table::Int(static_cast<int>(i) + 1),
           service::SessionStateName(done.state),
           done.results.empty()
               ? "-"
               : Table::Num(done.results[0].final_estimate, 2),
           Table::Int(static_cast<long long>(done.queries_used)),
           Table::Int(static_cast<long long>(done.dedup_hits))});
    }

    std::printf("%s over %s (%zu tuples), %d hosted %s sessions, k=%d, "
                "budget %llu\n\n",
                spec.name.c_str(), flags.GetString("dataset").c_str(),
                dataset.size(), sessions, algorithm.c_str(), k,
                static_cast<unsigned long long>(budget));
    stable.Print();
    std::printf("\nmean estimate : %.2f (95%% CI ±%.2f across sessions)\n",
                estimates.mean(), estimates.ConfidenceHalfWidth());
    std::printf("ground truth  : %.2f (simulator-only knowledge)\n", truth);
    std::printf("relative error: %.1f%%\n",
                100.0 * RelativeError(estimates.mean(), truth));
    if (svc.dedup() != nullptr) {
      const service::DedupStats d = svc.dedup()->Stats();
      std::printf("dedup         : %llu of %llu interface queries answered "
                  "from the shared cache\n",
                  static_cast<unsigned long long>(d.saved_attempts),
                  static_cast<unsigned long long>(d.lookups));
    }

    if (introspect) {
      service::ServiceIntrospector intro({.service = &svc,
                                          .sharded = transport.get(),
                                          .sampler = &ts,
                                          .recorder = &recorder,
                                          .registry = &registry});
      if (!statusz_path.empty() &&
          !DumpText(statusz_path, intro.BuildStatusz().ToJson() + "\n",
                    "statusz")) {
        return 1;
      }
      if (!prom_path.empty() &&
          !DumpText(prom_path, intro.PrometheusText(), "prometheus export")) {
        return 1;
      }
    }
    return 0;
  }

  Table table({"run", "estimate", "queries", "samples"});
  RunningStats estimates;
  for (int r = 0; r < runs; ++r) {
    const double target_ci = flags.GetDouble("target-ci");
    RunResult run;
    size_t samples = 0;
    if (algorithm == "lr") {
      LrClient client(&server, {.k = k, .budget = budget}, transport.get());
      LrAggOptions opts;
      opts.seed = seed + r;
      LrAggEstimator est(&client, sampler.get(), spec, opts);
      run = target_ci > 0
                ? RunUntilConfidence(MakeHandle(&est), target_ci, budget)
                : RunWithBudget(MakeHandle(&est), budget);
      samples = est.rounds();
      if (flags.GetBool("verbose")) {
        const LrAggDiagnostics& d = est.diagnostics();
        std::printf("  run %d: %zu rounds, %zu exact cells, %zu MC cells, "
                    "%llu cell queries\n",
                    r + 1, d.rounds, d.cells_exact, d.cells_monte_carlo,
                    static_cast<unsigned long long>(d.cell_queries));
      }
    } else if (algorithm == "lnr") {
      LnrClient client(&server, {.k = k, .budget = budget});
      LnrAggOptions opts;
      opts.seed = seed + r;
      opts.cell.search.delta_fraction = 1e-6;
      opts.cell.search.delta_prime_fraction = 1e-4;
      LnrAggEstimator est(&client, sampler.get(), spec, opts);
      run = target_ci > 0
                ? RunUntilConfidence(MakeHandle(&est), target_ci, budget)
                : RunWithBudget(MakeHandle(&est), budget);
      samples = est.rounds();
      if (flags.GetBool("verbose")) {
        const LnrAggDiagnostics& d = est.diagnostics();
        std::printf("  run %d: %zu rounds, %zu cells inferred, %zu cache "
                    "hits\n",
                    r + 1, d.rounds, d.cells_inferred, d.cache_hits);
      }
    } else if (algorithm == "nno") {
      LrClient client(&server, {.k = k, .budget = budget}, transport.get());
      NnoOptions opts;
      opts.seed = seed + r;
      NnoEstimator est(&client, spec, opts);
      run = RunWithBudget(MakeHandle(&est), budget);
      samples = est.rounds();
    } else {
      std::fprintf(stderr, "error: unknown --algorithm=%s\n",
                   algorithm.c_str());
      return 1;
    }
    estimates.Add(run.final_estimate);
    table.AddRow({Table::Int(r + 1), Table::Num(run.final_estimate, 2),
                  Table::Int(static_cast<long long>(run.queries)),
                  Table::Int(static_cast<long long>(samples))});
  }

  std::printf("%s over %s (%zu tuples), algorithm %s, k=%d, budget %llu\n\n",
              spec.name.c_str(), flags.GetString("dataset").c_str(),
              dataset.size(), algorithm.c_str(), k,
              static_cast<unsigned long long>(budget));
  table.Print();
  std::printf("\nmean estimate : %.2f (95%% CI ±%.2f across runs)\n",
              estimates.mean(), estimates.ConfidenceHalfWidth());
  std::printf("ground truth  : %.2f (simulator-only knowledge)\n", truth);
  std::printf("relative error: %.1f%%\n",
              100.0 * RelativeError(estimates.mean(), truth));
  return 0;
}

}  // namespace
}  // namespace lbsagg

int main(int argc, char** argv) {
  lbsagg::FlagParser flags;
  flags.AddString("dataset", "usa",
                  "usa | china | path to a dataset CSV (see lbs/dataset_io.h)");
  flags.AddInt("n", 10000, "tuples for the built-in scenarios");
  flags.AddInt("scenario-seed", 2015, "seed of the built-in scenarios");
  flags.AddString("algorithm", "lr", "lr | lnr | nno");
  flags.AddString("aggregate", "count", "count | sum | avg");
  flags.AddString("column", "", "numeric column for sum/avg");
  flags.AddString("where", "",
                  "selection condition: 'col=value' (string) or 'col' (bool)");
  flags.AddInt("k", 5, "results requested per query");
  flags.AddString("index", "kdtree",
                  "server-side spatial index backend: kdtree | grid | brute "
                  "| learned (results are identical; speed differs)");
  flags.AddInt("shards", 1,
               "partition the hidden database across this many shards and "
               "answer kNN by scatter-gather (results are identical; lr/nno "
               "only)");
  flags.AddInt("budget", 10000, "query budget per run");
  flags.AddInt("runs", 3, "independent runs");
  flags.AddInt("sessions", 0,
               "host this many concurrent sessions (seeds seed..seed+N-1) in "
               "one EstimationService with cross-session dedup instead of "
               "running sequentially (0 = off)");
  flags.AddInt("seed", 1, "base estimator seed");
  flags.AddString("statusz", "",
                  "with --sessions: attach the live introspection plane and "
                  "dump the statusz JSON snapshot to this path after the "
                  "fleet drains ('-' = stdout)");
  flags.AddString("prom", "",
                  "with --sessions: dump the Prometheus text-format export "
                  "of the fleet's metric registry to this path ('-' = "
                  "stdout)");
  flags.AddString("sampler", "census", "census | uniform");
  flags.AddString("wal-dir", "",
                  "durable run: mirror evidence into a WAL + checkpoints "
                  "under this directory (single engine-native run)");
  flags.AddBool("resume", false,
                "with --wal-dir: recover the directory and continue the "
                "interrupted run bit-identically");
  flags.AddInt("checkpoint-every", 64,
               "with --wal-dir: checkpoint cadence in committed rounds");
  flags.AddInt("kill-after-rounds", 0,
               "with --wal-dir: SIGKILL this process after N rounds "
               "(crash-recovery harness)");
  flags.AddInt("fail-after-bytes", 0,
               "with --wal-dir: stop persisting WAL bytes after N "
               "(torn-tail injection)");
  flags.AddInt("fail-fsync-at", 0,
               "with --wal-dir: fail the Nth WAL fsync (1-based)");
  flags.AddString("export", "",
                  "write the generated dataset to this CSV and exit");
  flags.AddInt("localize", 0,
               "instead of estimating, localize this many tuples through a "
               "rank-only view (§4.3)");
  flags.AddDouble("target-ci", 0.0,
                  "stop each run once the 95% CI half-width falls below this "
                  "fraction of the estimate (0 = run to the budget)");
  flags.AddBool("verbose", false, "print per-run estimator diagnostics");
  flags.AddBool("help", false, "show this help");

  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }
  if (flags.GetBool("help")) {
    std::fputs(flags.HelpText(argv[0]).c_str(), stdout);
    return 0;
  }
  return lbsagg::Run(flags);
}
