#!/usr/bin/env bash
# Full local gate: sanitizer builds + tier-1 tests + perf smoke.
#
#   tools/check.sh            # everything (ASAN/UBSAN ctest, TSAN transport
#                             # tests, then perf smoke)
#   tools/check.sh --fast     # sanitizer tests only, skip the perf smoke
#
# The sanitizer builds live in build-asan/ and build-tsan/ so they never
# clobber the regular build/ tree. ASAN and TSAN cannot share a binary, so
# the thread-sanitizer pass is its own build; it covers the suites that
# exercise real threads (the transport dispatcher and the sweep fan-out).
# The perf smoke runs the micro benchmarks from the regular (optimized)
# build with a token min-time: it validates that the bench code runs, not
# the timings — see BENCH_hotpath.json / BENCH_transport.json for those.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> sanitizer build (ASAN + UBSAN)"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > /dev/null
cmake --build build-asan -j "$(nproc)" -- --quiet 2>/dev/null \
  || cmake --build build-asan -j "$(nproc)"

echo "==> tier-1 tests under sanitizers"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "==> thread-sanitizer build (transport + sweep threading)"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  > /dev/null
cmake --build build-tsan -j "$(nproc)" \
  --target transport_test transport_determinism_test sweep_determinism_test \
           sharded_server_test sharded_transport_test obs_test engine_test \
           service_test introspect_test wal_test durability_test \
  -- --quiet 2>/dev/null \
  || cmake --build build-tsan -j "$(nproc)" \
       --target transport_test transport_determinism_test \
                sweep_determinism_test sharded_server_test \
                sharded_transport_test obs_test engine_test service_test \
                introspect_test wal_test durability_test

echo "==> threaded tests under TSAN"
./build-tsan/tests/transport_test
./build-tsan/tests/transport_determinism_test
# sweep_determinism_test includes the engine-native evidence determinism
# suite (NnoProbeResolver over the async dispatcher at 1/4/8 workers);
# engine_test pins the single-threaded engine contracts under TSAN too.
./build-tsan/tests/sweep_determinism_test
# sharded_server_test covers the parallel per-shard index build;
# sharded_transport_test drives the scatter-gather transport (dispatcher
# workers over per-lane state).
./build-tsan/tests/sharded_server_test
./build-tsan/tests/sharded_transport_test
./build-tsan/tests/obs_test
./build-tsan/tests/engine_test
# service_test drives EstimationService sessions over the shared dedup wire
# with dispatcher workers live (single-flight owner/follower handoff);
# sweep_determinism_test's ServiceDeterminism suites sweep worker counts.
./build-tsan/tests/service_test
# introspect_test races a flight-recorder drainer thread against the
# scheduler's trigger publishes and the dispatcher workers' span emission
# (multi-producer CAS claims, concurrent drain), plus the trigger-registry
# re-entrancy cases.
./build-tsan/tests/introspect_test
# wal_test / durability_test: the durable evidence log's storage layer and
# the crash-recovery matrix. The fork+SIGKILL two-process case compiles out
# under TSAN (it does not survive forked children); the in-process
# byte-truncation matrix covers the same cut points.
./build-tsan/tests/wal_test
./build-tsan/tests/durability_test

if [[ "$FAST" == "0" ]]; then
  echo "==> perf smoke (optimized build, token min-time)"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)" --target micro_hotpath
  ./build/bench/micro_hotpath --benchmark_min_time=0.01

  echo "==> observability overhead gate (instrumented vs LBSAGG_OBS_DISABLED)"
  cmake -B build-noobs -S . -DLBSAGG_OBS_DISABLED=ON > /dev/null
  cmake --build build-noobs -j "$(nproc)" --target micro_hotpath \
    -- --quiet 2>/dev/null \
    || cmake --build build-noobs -j "$(nproc)" --target micro_hotpath
  # Paired interleaved min-of-N: the two binaries alternate, each benchmark
  # keeps its best time per round, and the gate compares the mins — the only
  # methodology that survives a noisy shared VM (see DESIGN.md §4.8). The
  # budget is 1% on the kd-tree search benchmarks, the hottest instrumented
  # loop (and the only one the opt-in spatial counters could slow down).
  python3 - <<'PYEOF'
import json, subprocess, sys

ARGS = ["--benchmark_filter=BM_KnnQuery", "--benchmark_format=json",
        "--benchmark_min_time=0.10"]

def run(binary):
    out = subprocess.run([binary] + ARGS, check=True, capture_output=True,
                         text=True).stdout
    return {b["name"]: b["cpu_time"] for b in json.loads(out)["benchmarks"]}

best_on, best_off = {}, {}
for _ in range(5):  # interleave so machine noise hits both binaries alike
    for times, binary in ((best_on, "./build/bench/micro_hotpath"),
                          (best_off, "./build-noobs/bench/micro_hotpath")):
        for name, t in run(binary).items():
            times[name] = min(times.get(name, float("inf")), t)

failed = False
for name in sorted(best_off):
    delta = best_on[name] / best_off[name] - 1.0
    status = "ok" if delta <= 0.01 else "FAIL"
    if delta > 0.01:
        failed = True
    print(f"  {name}: instrumented {best_on[name]:.1f}ns "
          f"vs disabled {best_off[name]:.1f}ns ({delta:+.2%}) {status}")
if failed:
    sys.exit("observability overhead exceeds the 1% budget")
print("  observability overhead within the 1% budget")
PYEOF
fi

echo "==> all checks passed"
