#!/usr/bin/env bash
# Full local gate: sanitizer builds + tier-1 tests + perf smoke.
#
#   tools/check.sh            # everything (ASAN/UBSAN ctest, TSAN transport
#                             # tests, then perf smoke)
#   tools/check.sh --fast     # sanitizer tests only, skip the perf smoke
#
# The sanitizer builds live in build-asan/ and build-tsan/ so they never
# clobber the regular build/ tree. ASAN and TSAN cannot share a binary, so
# the thread-sanitizer pass is its own build; it covers the suites that
# exercise real threads (the transport dispatcher and the sweep fan-out).
# The perf smoke runs the micro benchmarks from the regular (optimized)
# build with a token min-time: it validates that the bench code runs, not
# the timings — see BENCH_hotpath.json / BENCH_transport.json for those.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> sanitizer build (ASAN + UBSAN)"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > /dev/null
cmake --build build-asan -j "$(nproc)" -- --quiet 2>/dev/null \
  || cmake --build build-asan -j "$(nproc)"

echo "==> tier-1 tests under sanitizers"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "==> thread-sanitizer build (transport + sweep threading)"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  > /dev/null
cmake --build build-tsan -j "$(nproc)" \
  --target transport_test transport_determinism_test sweep_determinism_test \
  -- --quiet 2>/dev/null \
  || cmake --build build-tsan -j "$(nproc)" \
       --target transport_test transport_determinism_test \
                sweep_determinism_test

echo "==> threaded tests under TSAN"
./build-tsan/tests/transport_test
./build-tsan/tests/transport_determinism_test
./build-tsan/tests/sweep_determinism_test

if [[ "$FAST" == "0" ]]; then
  echo "==> perf smoke (optimized build, token min-time)"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)" --target micro_hotpath
  ./build/bench/micro_hotpath --benchmark_min_time=0.01
fi

echo "==> all checks passed"
