#!/usr/bin/env bash
# Full local gate: sanitizer build + tier-1 tests + perf smoke.
#
#   tools/check.sh            # everything (ASAN/UBSAN ctest, then perf smoke)
#   tools/check.sh --fast     # sanitizer tests only, skip the perf smoke
#
# The sanitizer build lives in build-asan/ so it never clobbers the regular
# build/ tree. The perf smoke runs the hot-path micro benchmark from the
# regular (optimized) build with a token min-time: it validates that the
# bench code runs, not the timings — see BENCH_hotpath.json for those.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> sanitizer build (ASAN + UBSAN)"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  > /dev/null
cmake --build build-asan -j "$(nproc)" -- --quiet 2>/dev/null \
  || cmake --build build-asan -j "$(nproc)"

echo "==> tier-1 tests under sanitizers"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

if [[ "$FAST" == "0" ]]; then
  echo "==> perf smoke (optimized build, token min-time)"
  cmake -B build -S . > /dev/null
  cmake --build build -j "$(nproc)" --target micro_hotpath
  ./build/bench/micro_hotpath --benchmark_min_time=0.01
fi

echo "==> all checks passed"
