// Multi-aggregate amortization (DESIGN.md §4.9): the engine's point is that
// one Horvitz–Thompson evidence stream answers any aggregate, so N
// aggregates share one query budget instead of paying it N times. This
// driver answers COUNT(restaurants), SUM(rating) and AVG(rating |
// restaurant) two ways at the same per-run budget:
//   - engine:  one LrCellResolver run, three AggregateQuery consumers;
//   - legacy:  three independent LrAggEstimator runs, one per aggregate.
// and prints accuracy plus total interface queries for each. The accuracy
// is comparable (both fold the same HT contributions); the legacy column
// pays ~3x the queries for it.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "engine/engine.h"
#include "engine/lr_resolver.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 4000;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  UniformSampler sampler(usa.dataset->box());

  const int rating = usa.columns.rating;
  const ReturnedTuplePredicate is_restaurant =
      ColumnEquals(usa.columns.category, "restaurant");
  const std::vector<AggregateSpec> specs = {
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants)"),
      AggregateSpec::Sum(rating, "SUM(rating)"),
      AggregateSpec::AvgWhere(rating, is_restaurant, "AVG(rating|restaurant)"),
  };

  const TupleFilter truth_restaurant = CategoryIs(usa.columns, "restaurant");
  const auto rating_of = [rating](const Tuple& t) {
    return std::get<double>(t.values[rating]);
  };
  const std::vector<double> truths = {
      static_cast<double>(usa.dataset->GroundTruthCount(truth_restaurant)),
      usa.dataset->GroundTruthSum(nullptr, rating_of),
      usa.dataset->GroundTruthSum(truth_restaurant, rating_of) /
          usa.dataset->GroundTruthCount(truth_restaurant),
  };

  // --- Engine: one budget, three consumers ----------------------------------
  std::map<std::string, std::vector<RunResult>> engine_traces;
  std::vector<RunningStats> engine_err(specs.size());
  RunningStats engine_queries;
  for (int run = 0; run < config.runs; ++run) {
    const uint64_t seed = config.seed_base + run;
    LrClient client(&server, {.k = config.k});
    engine::LrCellResolver resolver(&client, &sampler, {.seed = seed});
    engine::EstimationEngine eng(&resolver);
    for (const AggregateSpec& spec : specs) eng.AddAggregate(spec);
    const std::vector<RunResult> results =
        RunEngineWithBudget(&eng, config.budget);
    for (size_t i = 0; i < specs.size(); ++i) {
      engine_err[i].Add(RelativeError(results[i].final_estimate, truths[i]));
      engine_traces[specs[i].name].push_back(results[i]);
    }
    engine_queries.Add(static_cast<double>(eng.queries_used()));
  }

  // --- Legacy: one budget per aggregate -------------------------------------
  std::vector<RunningStats> legacy_err(specs.size());
  RunningStats legacy_queries;
  for (int run = 0; run < config.runs; ++run) {
    const uint64_t seed = config.seed_base + run;
    double total_queries = 0.0;
    for (size_t i = 0; i < specs.size(); ++i) {
      LrClient client(&server, {.k = config.k});
      LrAggEstimator est(&client, &sampler, specs[i], {.seed = seed});
      const RunResult r = RunWithBudget(MakeHandle(&est), config.budget);
      legacy_err[i].Add(RelativeError(r.final_estimate, truths[i]));
      total_queries += static_cast<double>(r.queries);
    }
    legacy_queries.Add(total_queries);
  }

  std::printf(
      "Multi-aggregate amortization — %d POIs, budget %llu per run, "
      "%d runs\n\n",
      config.num_pois, (unsigned long long)config.budget, config.runs);

  Table table({"aggregate", "truth", "engine rel.err", "legacy rel.err"});
  for (size_t i = 0; i < specs.size(); ++i) {
    table.AddRow({specs[i].name, Table::Num(truths[i], 1),
                  Table::Num(engine_err[i].mean(), 4),
                  Table::Num(legacy_err[i].mean(), 4)});
  }
  table.Print();

  std::printf(
      "\nmean interface queries per run: engine %.0f (all %zu aggregates), "
      "legacy %.0f (%.0f per aggregate)\n",
      engine_queries.mean(), specs.size(), legacy_queries.mean(),
      legacy_queries.mean() / specs.size());
  std::printf("amortization factor: %.2fx\n",
              legacy_queries.mean() / engine_queries.mean());

  MaybeWriteRunReport("fig_multi_aggregate", engine_traces);
  return 0;
}
