// Ablation: defensive uniform/census mixtures (§5.2 context). External
// knowledge is a heuristic: a census that under-covers a populated area
// leaves those tuples with tiny inclusion probability and explosive
// Horvitz–Thompson weights. Mixing in a uniform component floors every
// location's density. The sweep runs COUNT(*) under a census whose noise is
// cranked up, across mixture weights α (α = 0: pure census, α = 1: pure
// uniform).

#include <cstdio>

#include "common/bench_common.h"
#include "core/mixture_sampler.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  UsaOptions uopts;
  uopts.num_pois = 5000;
  uopts.census_noise = 0.9;  // badly degraded external knowledge
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler uniform(usa.dataset->box());
  CensusSampler census(&usa.census);

  const AggregateSpec spec = AggregateSpec::Count();
  const double truth = 5000.0;
  const uint64_t budget = 12000;
  const int runs = 12;

  Table table({"uniform weight alpha", "mean rel. error at budget"});
  for (const double alpha : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const MixtureSampler mixture(&uniform, &census, alpha);
    const auto traces = SweepEstimators(
        {MakeLrSpec("mix", &server, &mixture, spec, 5)}, runs, budget, 42);
    const ErrorCurve curve = ComputeErrorCurve(traces.at("mix"), truth);
    table.AddRow({Table::Num(alpha, 2),
                  Table::Num(curve.mean_rel_error.back(), 3)});
  }

  std::printf("Ablation — uniform/census mixture weight under noisy external "
              "knowledge, COUNT(*) at %llu queries (mean of %d runs)\n\n",
              static_cast<unsigned long long>(budget), runs);
  table.Print();
  std::printf("\nExpected shape: a small uniform component costs little when "
              "the census is good and\ncaps the damage when it is bad; pure "
              "uniform pays the full Figure-11 cell-size skew.\n");
  MaybeWriteRunReport("ablation_mixture_sampler", {});
  return 0;
}
