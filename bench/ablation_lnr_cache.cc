// Ablation: the per-tuple cell-probability cache in LNR-LBS-AGG (the
// §3.2.2 history idea carried over to rank-only services). The service is
// static, so a tuple's inferred inclusion probability never changes; with
// the cache every repeated sample of a big-cell (rural) tuple is free.

#include <cstdio>

#include "common/bench_common.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  ChinaOptions copts;
  copts.num_users = 300;
  const ChinaScenario china = BuildChinaScenario(copts);
  LbsServer server(china.dataset.get(), {.max_k = 1});
  CensusSampler sampler(&china.census);
  const uint64_t budget = 30000;
  const int runs = 8;

  Table table({"variant", "samples / run", "rel. error at budget"});
  for (const bool cache : {false, true}) {
    double total_rounds = 0.0;
    double total_err = 0.0;
    for (int r = 0; r < runs; ++r) {
      LnrClient client(&server, {.k = 1, .budget = budget});
      LnrAggOptions opts = DefaultLnrBenchOptions();
      opts.reuse_cell_probabilities = cache;
      opts.seed = 500 + r;
      LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
      const RunResult run = RunWithBudget(MakeHandle(&est), budget);
      total_rounds += static_cast<double>(est.rounds()) / runs;
      total_err += RelativeError(run.final_estimate, 300.0) / runs;
    }
    table.AddRow({cache ? "probability cache ON" : "probability cache OFF",
                  Table::Num(total_rounds, 0), Table::Num(total_err, 3)});
  }

  std::printf("Ablation — LNR per-tuple probability cache at a budget of "
              "%llu queries (mean of %d runs)\n\n",
              static_cast<unsigned long long>(budget), runs);
  table.Print();
  MaybeWriteRunReport("ablation_lnr_cache", {});
  return 0;
}
