// Estimation-as-a-service under load: a virtual-time harness driving up to
// 10^6 simulated sessions through the EstimationService against one
// rate-limited SimulatedTransport backend. Tracked in BENCH_service.json:
//
//   * session latency p50/p90/p99 on the transport's virtual clock — the
//     queueing story: every session is submitted at t=0, so the latency
//     distribution is dominated by time spent behind the token bucket and
//     the scheduler's round-robin;
//   * sessions/s wall throughput of the whole service loop (admission,
//     activation, slicing, dedup, teardown);
//   * queries saved by cross-session dedup. The fleet replays a bounded
//     pool of distinct query streams (seed = base + i % distinct), so the
//     backend answers each stream once while every session is still charged
//     (and estimates) exactly as if it ran alone. The same load runs twice,
//     dedup on and off: with dedup the backend sees only the distinct
//     streams and virtual time nearly stops advancing — the saved-query
//     fraction *is* the latency collapse.
//
// Memory stays flat at any fleet size: queued sessions are specs, the
// active set bounds live engines, and a kFinished trigger harvests each
// session's latency before Forget() drops its record.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "obs/introspect/flight_recorder.h"
#include "obs/introspect/sampler.h"
#include "obs/report.h"
#include "service/service.h"
#include "service/watchdog.h"
#include "transport/simulated_transport.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace lbsagg {
namespace bench {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct LoadConfig {
  size_t sessions = 0;
  size_t distinct = 64;
  uint64_t budget = 24;
  int k = 5;
  size_t max_active = 64;
  size_t slice_rounds = 4;
  unsigned workers = 4;
  bool dedup = true;
};

struct LoadResult {
  uint64_t completed = 0;
  double submit_ms = 0;
  double wall_ms = 0;
  double sessions_per_sec = 0;
  double virtual_ms = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  RunningStats latency_stats;
  RunningStats query_stats;
  service::DedupStats dedup;
  std::string diagnostics;
  // Introspection plane (live for the whole run; see DESIGN.md §4.13).
  std::string timeseries;     // sampler's "timeseries" section
  std::string introspection;  // recorder tallies + watchdog verdicts
  uint64_t windows_cut = 0;
  uint64_t recorder_published = 0;
  uint64_t recorder_dropped = 0;
};

LoadResult RunLoad(const LbsServer& server, const LoadConfig& cfg) {
  // The backend wire: fixed-latency, token-bucket rate limited — the §2.1
  // service quota made explicit. Virtual time, so the harness never sleeps.
  SimulatedTransportOptions topts;
  topts.latency.fixed_ms = 5.0;
  topts.rate_limit = {.capacity = 32.0, .refill_per_sec = 200.0};
  SimulatedTransport wire(&server, topts);

  service::ServiceOptions options;
  options.admission.queue_capacity = cfg.sessions + 1;
  options.admission.max_active = cfg.max_active;
  options.slice_rounds = cfg.slice_rounds;
  options.dispatcher_workers = cfg.workers;
  options.dedup = cfg.dedup;
  options.clock_ms = [&wire] { return wire.VirtualNowMs(); };
  // The introspection plane rides the whole load: every session lifecycle
  // event streams through the flight recorder (drained live, mid-run), the
  // sampler cuts metric windows on the virtual clock, and the SLO watchdog
  // scans the active set — all without perturbing the estimates.
  obs::introspect::FlightRecorder recorder(8192);
  options.recorder = &recorder;
  service::EstimationService svc({{.meta = &server, .wire = &wire}}, options);
  obs::introspect::TimeSeriesSampler sampler(
      {.clock_ms = [&wire] { return wire.VirtualNowMs(); },
       .period_ms = 250.0});
  service::SloWatchdog watchdog(&svc);

  // Harvest-and-forget: latencies recorded the moment a session ends, the
  // record dropped on the next driver iteration so memory stays O(active).
  LoadResult result;
  std::vector<double> latencies;
  latencies.reserve(cfg.sessions);
  std::vector<service::SessionId> done_ids;
  svc.triggers().Add(service::SessionEventKind::kFinished,
                     [&](const service::SessionEvent& e) {
                       const service::SessionStatus s = svc.Poll(e.id);
                       latencies.push_back(s.latency_ms);
                       result.latency_stats.Add(s.latency_ms);
                       result.query_stats.Add(
                           static_cast<double>(s.queries_used));
                       done_ids.push_back(e.id);
                     });

  const double submit0 = WallMs();
  for (size_t i = 0; i < cfg.sessions; ++i) {
    service::SessionSpec spec;
    spec.family = service::EstimatorFamily::kNno;
    spec.k = cfg.k;
    spec.budget = cfg.budget;
    spec.seed = 1000 + i % cfg.distinct;
    (void)svc.Submit(spec);
  }
  result.submit_ms = WallMs() - submit0;

  const double run0 = WallMs();
  std::vector<obs::introspect::FlightRecord> drained;
  uint64_t slices = 0;
  while (svc.RunSlice()) {
    for (const service::SessionId id : done_ids) (void)svc.Forget(id);
    done_ids.clear();
    sampler.MaybeTick();
    // The watchdog scan copies trajectories; amortize it, and drain the
    // recorder live so the drained window keeps moving while workers run.
    if ((++slices & 255) == 0) {
      watchdog.Check();
      drained.clear();
      recorder.Drain(&drained);
    }
  }
  result.wall_ms = WallMs() - run0;
  for (const service::SessionId id : done_ids) (void)svc.Forget(id);
  sampler.Tick();  // cut the final partial window

  std::sort(latencies.begin(), latencies.end());
  result.completed = svc.completed();
  result.sessions_per_sec =
      1000.0 * static_cast<double>(svc.completed()) / result.wall_ms;
  result.virtual_ms = svc.NowMs();
  result.p50 = Percentile(latencies, 0.50);
  result.p90 = Percentile(latencies, 0.90);
  result.p99 = Percentile(latencies, 0.99);
  if (svc.dedup() != nullptr) result.dedup = svc.dedup()->Stats();
  result.diagnostics = svc.diagnostics_json();
  result.timeseries = sampler.ToJson();
  result.windows_cut = sampler.windows_cut();
  result.recorder_published = recorder.published();
  result.recorder_dropped = recorder.dropped();
  result.introspection =
      "{\"flight_recorder\": " + recorder.StatsJson() +
      ", \"watchdog\": {\"stalled_fired\": " +
      std::to_string(watchdog.stalled_fired()) +
      ", \"deadline_fired\": " + std::to_string(watchdog.deadline_fired()) +
      "}}";
  return result;
}

std::string Json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string LoadJson(const LoadResult& r) {
  std::string json = "{";
  json += "\"completed\": " + std::to_string(r.completed);
  json += ", \"submit_ms\": " + Json(r.submit_ms);
  json += ", \"wall_ms\": " + Json(r.wall_ms);
  json += ", \"sessions_per_sec\": " + Json(r.sessions_per_sec);
  json += ", \"virtual_ms\": " + Json(r.virtual_ms);
  json += ", \"latency_p50_ms\": " + Json(r.p50);
  json += ", \"latency_p90_ms\": " + Json(r.p90);
  json += ", \"latency_p99_ms\": " + Json(r.p99);
  json += "}";
  return json;
}

void PrintLoad(const char* title, const LoadResult& r) {
  std::printf("\n== %s ==\n", title);
  Table table({"metric", "value"});
  table.AddRow({"sessions completed",
                Table::Int(static_cast<long long>(r.completed))});
  table.AddRow({"wall run s", Table::Num(r.wall_ms / 1000.0, 2)});
  table.AddRow({"sessions/s", Table::Num(r.sessions_per_sec, 0)});
  table.AddRow({"virtual time s", Table::Num(r.virtual_ms / 1000.0, 1)});
  table.AddRow({"latency p50 (virtual ms)", Table::Num(r.p50, 1)});
  table.AddRow({"latency p90 (virtual ms)", Table::Num(r.p90, 1)});
  table.AddRow({"latency p99 (virtual ms)", Table::Num(r.p99, 1)});
  table.AddRow({"mean queries/session", Table::Num(r.query_stats.mean(), 2)});
  table.AddRow({"recorder events",
                Table::Int(static_cast<long long>(r.recorder_published))});
  table.AddRow({"recorder drops",
                Table::Int(static_cast<long long>(r.recorder_dropped))});
  table.AddRow({"sampler windows",
                Table::Int(static_cast<long long>(r.windows_cut))});
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace lbsagg

int main(int argc, char** argv) {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  FlagParser flags;
  flags.AddInt("sessions", 1000000, "sessions in the dedup-on run");
  flags.AddInt("ablation-sessions", 100000,
               "sessions in the dedup-off ablation (0 = skip; every one of "
               "its interface queries hits the rate-limited backend, so it "
               "is run at a smaller scale)");
  flags.AddInt("distinct-streams", 64,
               "distinct session seeds (the dedup sharing factor)");
  flags.AddInt("budget", 24, "per-session interface-query budget");
  flags.AddInt("k", 5, "results per interface query");
  flags.AddInt("pois", 4000, "backend dataset size");
  flags.AddInt("max-active", 64, "admission: concurrently active sessions");
  flags.AddInt("slice-rounds", 4, "engine rounds per scheduler slice");
  flags.AddInt("workers", 4, "dispatcher workers per backend");
  flags.AddString("json", "", "write the curated JSON document here");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }

  LoadConfig cfg;
  cfg.sessions = static_cast<size_t>(flags.GetInt("sessions"));
  cfg.distinct = static_cast<size_t>(flags.GetInt("distinct-streams"));
  cfg.budget = static_cast<uint64_t>(flags.GetInt("budget"));
  cfg.k = static_cast<int>(flags.GetInt("k"));
  cfg.max_active = static_cast<size_t>(flags.GetInt("max-active"));
  cfg.slice_rounds = static_cast<size_t>(flags.GetInt("slice-rounds"));
  cfg.workers = static_cast<unsigned>(flags.GetInt("workers"));
  const size_t ablation_sessions =
      std::min(static_cast<size_t>(flags.GetInt("ablation-sessions")),
               cfg.sessions);
  const int pois = static_cast<int>(flags.GetInt("pois"));

  UsaOptions uopts;
  uopts.num_pois = pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = cfg.k});

  std::printf("driving %zu sessions (%zu distinct streams, budget %llu, "
              "%zu active, %u workers)\n",
              cfg.sessions, cfg.distinct,
              static_cast<unsigned long long>(cfg.budget), cfg.max_active,
              cfg.workers);

  const LoadResult with_dedup = RunLoad(server, cfg);
  PrintLoad("dedup on", with_dedup);

  const double saved_fraction =
      with_dedup.dedup.lookups > 0
          ? static_cast<double>(with_dedup.dedup.saved_attempts) /
                static_cast<double>(with_dedup.dedup.lookups)
          : 0.0;
  std::printf("\ndedup: %llu interface queries, %llu reached the backend, "
              "%llu saved (%.2f%%)\n",
              static_cast<unsigned long long>(with_dedup.dedup.lookups),
              static_cast<unsigned long long>(with_dedup.dedup.lookups -
                                              with_dedup.dedup.saved_attempts),
              static_cast<unsigned long long>(with_dedup.dedup.saved_attempts),
              100.0 * saved_fraction);

  LoadResult no_dedup;
  if (ablation_sessions > 0) {
    LoadConfig ablation = cfg;
    ablation.sessions = ablation_sessions;
    ablation.dedup = false;
    no_dedup = RunLoad(server, ablation);
    PrintLoad("dedup off (ablation)", no_dedup);
  }

  std::string json = "{\n \"config\": {";
  json += "\"sessions\": " + std::to_string(cfg.sessions);
  json += ", \"ablation_sessions\": " + std::to_string(ablation_sessions);
  json += ", \"distinct_streams\": " + std::to_string(cfg.distinct);
  json += ", \"budget\": " + std::to_string(cfg.budget);
  json += ", \"k\": " + std::to_string(cfg.k);
  json += ", \"pois\": " + std::to_string(pois);
  json += ", \"max_active\": " + std::to_string(cfg.max_active);
  json += ", \"slice_rounds\": " + std::to_string(cfg.slice_rounds);
  json += ", \"workers\": " + std::to_string(cfg.workers);
  json += "},\n \"load.dedup=on\": " + LoadJson(with_dedup);
  if (ablation_sessions > 0) {
    json += ",\n \"load.dedup=off\": " + LoadJson(no_dedup);
  }
  json += ",\n \"dedup\": {";
  json += "\"interface_queries\": " + std::to_string(with_dedup.dedup.lookups);
  json += ", \"backend_queries\": " +
          std::to_string(with_dedup.dedup.lookups -
                         with_dedup.dedup.saved_attempts);
  json += ", \"saved_queries\": " +
          std::to_string(with_dedup.dedup.saved_attempts);
  {
    // %.3f would round 0.99994 to an untrue-looking 1.000.
    char frac[32];
    std::snprintf(frac, sizeof frac, "%.6f", saved_fraction);
    json += ", \"saved_fraction\": ";
    json += frac;
  }
  json += "}\n}\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Env-gated run report (DESIGN.md §4.8), "service" section included.
  if (const char* path = std::getenv("LBSAGG_RUN_REPORT");
      path != nullptr && path[0] != '\0') {
    obs::RunReport report;
    report.SetMeta("bench", "fig19_service");
    report.SetMetaNum("sessions", static_cast<double>(cfg.sessions));
    report.SetMetaNum("virtual_time_ms", with_dedup.virtual_ms);
    report.AddStats("session.latency_ms", with_dedup.latency_stats);
    report.AddStats("session.queries", with_dedup.query_stats);
    report.SetSnapshot(obs::MetricsRegistry::Default().Snapshot());
    report.AddJsonSection("service", with_dedup.diagnostics);
    report.AddJsonSection("timeseries", with_dedup.timeseries);
    report.AddJsonSection("introspection", with_dedup.introspection);
    std::ofstream out(path);
    if (out) {
      out << report.ToJson() << "\n";
      std::fprintf(stderr, "run report written to %s\n", path);
    } else {
      std::fprintf(stderr, "cannot write run report to %s\n", path);
    }
  }
  return 0;
}
