// Figure 18 at production scale: the sharded hidden database at 10^7–10^8
// tuples. Three series, tracked in BENCH_shard.json:
//
//   1. Build scaling — partitioning the dataset and building one index per
//      shard vs one monolithic index. Per-shard builds are independent, so
//      an N-core machine pays partition_ms + the shard-build makespan; the
//      modeled-core makespan (greedy LPT over the measured per-shard
//      durations) is reported next to the infinite-core critical path so
//      the speedup claim does not depend on the benchmark host's own core
//      count (this repo's reference numbers come from a 1-core VM).
//   2. Scatter-gather throughput — queries through ShardedTransport, each
//      shard lane metering its own token bucket. With spatial shards and a
//      finite coverage radius a query's scatter targets only the shards
//      whose region it can reach, so the per-lane load — and the
//      virtual-time throughput — scales with the shard count.
//   3. The Figure-18 estimator curve at scale — COUNT(*) via the NNO
//      estimator through the full sharded stack. Clean lanes are
//      estimator-invisible (sweep_determinism_test.cc), so one shard count
//      represents them all.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "lbs/sharded_server.h"
#include "transport/sharded_transport.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/generators.h"

namespace lbsagg {
namespace bench {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    out.push_back(std::stoi(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

// Makespan of the measured per-shard build durations on `cores` workers
// under greedy longest-processing-time scheduling — what a `cores`-core
// machine pays for the fleet build after the (serial) partition.
double MakespanMs(std::vector<double> durations, int cores) {
  std::sort(durations.rbegin(), durations.rend());
  std::vector<double> load(std::max(cores, 1), 0.0);
  for (double d : durations) {
    *std::min_element(load.begin(), load.end()) += d;
  }
  return *std::max_element(load.begin(), load.end());
}

struct BuildRow {
  int shards = 0;
  double partition_ms = 0;
  double max_shard_ms = 0;
  double critical_path_ms = 0;  // partition + max shard (unbounded cores)
  double modeled_ms = 0;        // partition + LPT makespan on --cores
  double speedup_vs_single = 0;
};

struct ThroughputRow {
  int shards = 0;
  double fanout_per_query = 0;
  double virtual_ms = 0;
  double virtual_qps = 0;
  double wall_qps = 0;
};

std::string Json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace lbsagg

int main(int argc, char** argv) {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  FlagParser flags;
  flags.AddString("index", "kdtree",
                  std::string("spatial backend (") + SpatialBackendChoices() +
                      ")");
  flags.AddString("tuples", "10000000", "comma-separated dataset sizes");
  flags.AddString("shards", "1,4,16", "comma-separated shard counts");
  flags.AddInt("queries", 20000, "kNN queries per throughput series");
  flags.AddInt("k", 10, "results per query");
  flags.AddInt("cores", 8, "modeled core count for the build makespan");
  flags.AddInt("budget", 2000, "estimator query budget");
  flags.AddInt("runs", 2, "estimator repetitions");
  flags.AddInt("estimator-max-tuples", 10000000,
               "skip the estimator series above this size");
  flags.AddString("json", "", "write the curated JSON document here");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }
  const auto backend = ParseSpatialBackend(flags.GetString("index"));
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: unknown --index=%s (choices: %s)\n",
                 flags.GetString("index").c_str(), SpatialBackendChoices());
    return 1;
  }
  const std::vector<int> sizes = ParseIntList(flags.GetString("tuples"));
  const std::vector<int> shard_counts = ParseIntList(flags.GetString("shards"));
  const int num_queries = static_cast<int>(flags.GetInt("queries"));
  const int k = static_cast<int>(flags.GetInt("k"));
  const int cores = static_cast<int>(flags.GetInt("cores"));
  const uint64_t budget = static_cast<uint64_t>(flags.GetInt("budget"));
  const int runs = static_cast<int>(flags.GetInt("runs"));
  const int estimator_max = static_cast<int>(flags.GetInt(
      "estimator-max-tuples"));

  const Box box({0, 0}, {1000, 1000});
  std::string json = "{\n \"config\": {\"index\": \"" +
                     std::string(SpatialBackendName(*backend)) +
                     "\", \"k\": " + std::to_string(k) +
                     ", \"queries\": " + std::to_string(num_queries) +
                     ", \"modeled_cores\": " + std::to_string(cores) + "}";

  for (int n : sizes) {
    std::printf("== n = %d (%s index) ==\n", n,
                SpatialBackendName(*backend));
    Rng rng(2015);
    const std::vector<Vec2> points = GenerateUniform(n, box, rng);
    Dataset dataset(box, Schema{});
    for (const Vec2& p : points) dataset.Add(p, {});

    // Coverage radius d_max sized so a page holds ~k tuples: the interface
    // restriction of §5.3, and what lets the scatter skip unreachable
    // shards.
    ServerOptions sopts;
    sopts.max_k = k;
    sopts.index_backend = *backend;
    sopts.max_radius =
        4.0 * std::sqrt(k * box.Area() / (3.141592653589793 * n));

    // --- 1. Build scaling ---------------------------------------------
    double t0 = NowMs();
    const std::unique_ptr<SpatialIndex> single =
        MakeSpatialIndex(*backend, points, box);
    const double single_ms = NowMs() - t0;
    std::printf("single index build: %.0f ms\n", single_ms);

    Table build_table({"shards", "partition ms", "max shard ms",
                       "critical path ms",
                       std::to_string(cores) + "-core ms", "speedup"});
    std::vector<BuildRow> build_rows;
    std::vector<std::unique_ptr<ShardedLbsServer>> servers;
    for (int shards : shard_counts) {
      servers.push_back(std::make_unique<ShardedLbsServer>(
          &dataset, ShardedServerOptions{.num_shards = shards,
                                         .build_threads = 1,
                                         .server = sopts}));
      const ShardBuildStats& stats = servers.back()->build_stats();
      BuildRow row;
      row.shards = shards;
      row.partition_ms = stats.partition_ms;
      row.max_shard_ms = *std::max_element(stats.shard_build_ms.begin(),
                                           stats.shard_build_ms.end());
      row.critical_path_ms = stats.critical_path_ms();
      row.modeled_ms =
          stats.partition_ms + MakespanMs(stats.shard_build_ms, cores);
      row.speedup_vs_single = single_ms / row.modeled_ms;
      build_rows.push_back(row);
      build_table.AddRow({Table::Int(shards), Table::Num(row.partition_ms, 0),
                          Table::Num(row.max_shard_ms, 0),
                          Table::Num(row.critical_path_ms, 0),
                          Table::Num(row.modeled_ms, 0),
                          Table::Num(row.speedup_vs_single, 2) + "x"});
    }
    build_table.Print();

    // --- 2. Scatter-gather throughput ---------------------------------
    Rng qrng(4242);
    std::vector<Vec2> queries;
    queries.reserve(num_queries);
    for (int i = 0; i < num_queries; ++i) queries.push_back(box.SamplePoint(qrng));

    Table tp_table({"shards", "fanout/query", "virtual s", "virtual qps",
                    "wall qps"});
    std::vector<ThroughputRow> tp_rows;
    for (size_t s = 0; s < shard_counts.size(); ++s) {
      ShardedTransportOptions topts;
      topts.rate_limit = {.capacity = 32.0, .refill_per_sec = 200.0};
      topts.latency.fixed_ms = 5.0;
      // Open-loop client: throughput is set by the per-lane quotas, not by
      // per-query latency, so it can scale with the shard count.
      topts.pipelined_clock = true;
      ShardedTransport transport(servers[s].get(), topts);
      uint64_t fanout = 0;
      const double w0 = NowMs();
      for (const Vec2& q : queries) {
        const TransportPlan plan = transport.Prepare(q, k);
        (void)transport.Fulfill(plan, q, k, nullptr);
      }
      const double wall_ms = NowMs() - w0;
      for (int lane = 0; lane < shard_counts[s]; ++lane) {
        fanout += transport.ShardMetrics(lane).requests;
      }
      ThroughputRow row;
      row.shards = shard_counts[s];
      row.fanout_per_query = static_cast<double>(fanout) / num_queries;
      row.virtual_ms = transport.VirtualNowMs();
      row.virtual_qps = 1000.0 * num_queries / row.virtual_ms;
      row.wall_qps = 1000.0 * num_queries / wall_ms;
      tp_rows.push_back(row);
      tp_table.AddRow({Table::Int(row.shards),
                       Table::Num(row.fanout_per_query, 2),
                       Table::Num(row.virtual_ms / 1000.0, 1),
                       Table::Num(row.virtual_qps, 0),
                       Table::Num(row.wall_qps, 0)});
    }
    tp_table.Print();

    // --- 3. Figure-18 estimator curve at scale ------------------------
    double est_mean_error = -1.0, est_mean_queries = -1.0;
    if (n <= estimator_max) {
      // Clean lanes: any shard count gives the same trace; use the middle
      // one. The metadata server uses the brute backend — never searched,
      // so it skips a third index build.
      const ShardedLbsServer* sharded =
          servers[std::min<size_t>(1, servers.size() - 1)].get();
      const LbsServer meta(&dataset,
                           {.max_k = k,
                            .max_radius = sopts.max_radius,
                            .index_backend = SpatialBackend::kBruteForce});
      ShardedTransport transport(sharded, {});
      double err_sum = 0.0, query_sum = 0.0;
      for (int r = 0; r < runs; ++r) {
        LrClient client(&meta, {.k = k, .budget = budget}, &transport);
        NnoEstimator est(&client, AggregateSpec::Count(),
                         {.seed = 42 + static_cast<uint64_t>(r)});
        const RunResult result = RunWithBudget(MakeHandle(&est), budget);
        err_sum += std::abs(result.final_estimate - n) / n;
        query_sum += static_cast<double>(result.queries);
      }
      est_mean_error = err_sum / runs;
      est_mean_queries = query_sum / runs;
      std::printf("estimator: COUNT(*) rel error %.3f at %.0f queries "
                  "(NNO, %d runs)\n",
                  est_mean_error, est_mean_queries, runs);
    }

    // --- JSON ----------------------------------------------------------
    json += ",\n \"n=" + std::to_string(n) + "\": {\n";
    json += "  \"single_index_build_ms\": " + Json(single_ms);
    for (const BuildRow& row : build_rows) {
      json += ",\n  \"build.shards=" + std::to_string(row.shards) + "\": {";
      json += "\"partition_ms\": " + Json(row.partition_ms);
      json += ", \"max_shard_ms\": " + Json(row.max_shard_ms);
      json += ", \"critical_path_ms\": " + Json(row.critical_path_ms);
      json += ", \"modeled_" + std::to_string(cores) +
              "core_ms\": " + Json(row.modeled_ms);
      json += ", \"speedup_vs_single\": " + Json(row.speedup_vs_single) + "}";
    }
    for (const ThroughputRow& row : tp_rows) {
      json += ",\n  \"scatter.shards=" + std::to_string(row.shards) + "\": {";
      json += "\"fanout_per_query\": " + Json(row.fanout_per_query);
      json += ", \"virtual_qps\": " + Json(row.virtual_qps);
      json += ", \"wall_qps\": " + Json(row.wall_qps) + "}";
    }
    if (est_mean_error >= 0.0) {
      json += ",\n  \"estimator\": {\"budget\": " + std::to_string(budget);
      json += ", \"runs\": " + std::to_string(runs);
      json += ", \"count_rel_error\": " + Json(est_mean_error);
      json += ", \"mean_queries\": " + Json(est_mean_queries) + "}";
    }
    json += "\n }";
  }
  json += "\n}\n";

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
