// Engine-layer micro-benchmarks: the per-round costs the estimation engine
// adds on top of the acquisition work — appending observations to the
// evidence log, folding a round into a consumer, replay-attaching a late
// consumer to an existing log, and a full engine round over the simulated
// server. Tracked in BENCH_engine.json (regenerate with
//   ./build/bench/micro_engine --benchmark_format=json > BENCH_engine.json
// on a quiet machine).

#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_main.h"

#include "core/aggregate.h"
#include "core/sampler.h"
#include "engine/aggregate_query.h"
#include "engine/engine.h"
#include "engine/evidence_store.h"
#include "engine/lr_resolver.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

// A synthetic evidence log with the shape LR rounds produce: a handful of
// weighted observations per round.
engine::EvidenceStore BuildStore(int rounds, int obs_per_round) {
  engine::EvidenceStore store;
  Rng rng(7);
  uint64_t queries = 0;
  for (int r = 0; r < rounds; ++r) {
    store.BeginRound({rng.Uniform01() * 1000.0, rng.Uniform01() * 1000.0});
    for (int i = 0; i < obs_per_round; ++i) {
      engine::Observation obs;
      obs.tuple_id = r * obs_per_round + i;
      obs.rank = i + 1;
      obs.weight = 1.0 + rng.Uniform01() * 100.0;
      obs.cost = 3;
      store.Append(obs);
    }
    queries += 3 * obs_per_round + 1;
    store.EndRound(queries);
  }
  return store;
}

void BM_EvidenceAppend(benchmark::State& state) {
  const int obs_per_round = static_cast<int>(state.range(0));
  Rng rng(7);
  engine::Observation obs;
  obs.tuple_id = 1;
  obs.weight = 42.0;
  obs.cost = 3;
  for (auto _ : state) {
    engine::EvidenceStore store;
    for (int r = 0; r < 64; ++r) {
      store.BeginRound({rng.Uniform01(), rng.Uniform01()});
      for (int i = 0; i < obs_per_round; ++i) store.Append(obs);
      store.EndRound(static_cast<uint64_t>(r + 1) * 16);
    }
    benchmark::DoNotOptimize(store.num_observations());
  }
  state.SetItemsProcessed(state.iterations() * 64 * obs_per_round);
}
BENCHMARK(BM_EvidenceAppend)->Arg(1)->Arg(5)->Arg(20);

struct EngineFixture {
  UsaScenario usa;
  LbsServer server;
  UniformSampler sampler;
  LrClient client;

  EngineFixture()
      : usa(BuildUsaScenario({.num_pois = 2000, .seed = 11})),
        server(usa.dataset.get(), {.max_k = 5}),
        sampler(usa.dataset->box()),
        client(&server, {.k = 5}) {}
};

void BM_ConsumerFold(benchmark::State& state) {
  static const EngineFixture* fixture = new EngineFixture();
  static const engine::EvidenceStore* store =
      new engine::EvidenceStore(BuildStore(1024, 5));
  for (auto _ : state) {
    engine::AggregateQuery query(AggregateSpec::Count(), &fixture->client);
    for (size_t r = 0; r < store->num_rounds(); ++r) {
      const engine::EvidenceRound& round = store->round(r);
      query.ConsumeRound(round, store->observations(round),
                         round.num_observations);
    }
    benchmark::DoNotOptimize(query.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * store->num_rounds());
}
BENCHMARK(BM_ConsumerFold);

// Replay-attaching a consumer to an engine whose log already holds N rounds
// (what AddAggregate pays mid-run). The server fixture keeps the resolver
// real; the measured loop only replays.

void BM_ReplayAttach(benchmark::State& state) {
  static const EngineFixture* fixture = new EngineFixture();
  const int rounds = static_cast<int>(state.range(0));
  LrClient client(&fixture->server, {.k = 5});
  engine::LrCellResolver resolver(&client, &fixture->sampler, {.seed = 3});
  engine::EstimationEngine eng(&resolver);
  eng.AddAggregate(AggregateSpec::Count());
  for (int i = 0; i < rounds; ++i) eng.Step();
  const int rating = fixture->usa.columns.rating;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)")));
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_ReplayAttach)->Arg(64)->Arg(512);

// One full engine round (sample, query, cell computation, append, fold) with
// 1 vs 4 registered consumers — the marginal cost of extra aggregates.
void BM_EngineRound(benchmark::State& state) {
  static const EngineFixture* fixture = new EngineFixture();
  const int num_aggregates = static_cast<int>(state.range(0));
  const int rating = fixture->usa.columns.rating;
  LrClient client(&fixture->server, {.k = 5});
  engine::LrCellResolver resolver(&client, &fixture->sampler, {.seed = 5});
  engine::EstimationEngine eng(&resolver);
  eng.AddAggregate(AggregateSpec::Count());
  for (int i = 1; i < num_aggregates; ++i) {
    eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  }
  for (auto _ : state) {
    eng.Step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["queries"] = static_cast<double>(eng.queries_used());
}
BENCHMARK(BM_EngineRound)->Arg(1)->Arg(4);

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
