// Hot-path micro-benchmarks: the three substrate layers every estimator
// query exercises — kd-tree kNN search, top-k region refinement, and the
// end-to-end LR cell computation — plus the client-side query memo. These
// are the numbers tracked in BENCH_hotpath.json (regenerate with
//   ./build/bench/micro_hotpath --benchmark_format=json \
//       > BENCH_hotpath.json
// on a quiet machine; see DESIGN.md "Hot path & complexity").

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_main.h"
#include "core/history.h"
#include "core/lr_cell.h"
#include "core/sampler.h"
#include "geometry/topk_region.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "spatial/kdtree.h"
#include "spatial/learned_index.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

// ---------------------------------------------------------------------------
// Layer 1: kd-tree kNN. Same workload shapes as micro_substrates so the
// before/after numbers in BENCH_hotpath.json line up with the seed run.

void BM_KnnQuery(benchmark::State& state) {
  const auto pts = RandomPoints(100000, 2);
  const KdTree tree(pts);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(kBox.SamplePoint(rng),
                                          static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_KnnQueryFiltered(benchmark::State& state) {
  const auto pts = RandomPoints(100000, 2);
  const KdTree tree(pts);
  Rng rng(3);
  const IndexFilter filter = [](int id) { return (id & 3) != 0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.NearestFiltered(
        kBox.SamplePoint(rng), static_cast<int>(state.range(0)), filter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQueryFiltered)->Arg(10);

// ---------------------------------------------------------------------------
// Layer 2: top-k region refinement. The batch benchmark measures one
// from-scratch ComputeTopkRegion over n constraint points (what every
// refinement round used to pay); the incremental benchmark measures a full
// refinement schedule — points arriving in batches across rounds — through
// the TopkRegionRefiner versus recomputing from scratch each round.

void BM_TopkRegionBatch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(64, 7);
  const Vec2 focal = pts[0];
  const std::vector<Vec2> others(pts.begin() + 1, pts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTopkRegion(focal, others, kBox, k).area);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopkRegionBatch)->Arg(1)->Arg(3)->Arg(5);

constexpr int kRounds = 8;
constexpr int kPointsPerRound = 8;

void BM_RefineScratch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(kRounds * kPointsPerRound + 1, 7);
  const Vec2 focal = pts[0];
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  for (auto _ : state) {
    double area = 0.0;
    std::vector<Vec2> known;
    for (int r = 0; r < kRounds; ++r) {
      known.insert(known.end(), pts.begin() + 1 + r * kPointsPerRound,
                   pts.begin() + 1 + (r + 1) * kPointsPerRound);
      area = ComputeTopkRegion(focal, known, domain, k).area;
    }
    benchmark::DoNotOptimize(area);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_RefineScratch)->Arg(1)->Arg(3)->Arg(5);

void BM_RefineIncremental(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(kRounds * kPointsPerRound + 1, 7);
  const Vec2 focal = pts[0];
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  for (auto _ : state) {
    double area = 0.0;
    TopkRegionRefiner refiner(domain, k);
    for (int r = 0; r < kRounds; ++r) {
      refiner.AddPoints(
          focal, std::vector<Vec2>(pts.begin() + 1 + r * kPointsPerRound,
                                   pts.begin() + 1 + (r + 1) * kPointsPerRound));
      area = refiner.Region().area;
    }
    benchmark::DoNotOptimize(area);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_RefineIncremental)->Arg(1)->Arg(3)->Arg(5);

// ---------------------------------------------------------------------------
// Layer 3: end-to-end LR rounds — the exact Theorem-1 cell computation an
// LR-LBS-AGG sample performs, including every interface query against the
// simulated server. One iteration = one full cell (several refinement
// rounds). The memo benchmark re-computes cells of neighboring tuples,
// which re-probe overlapping vertex sets — the memo's target workload.

struct LrFixture {
  UsaScenario usa;
  LbsServer server;
  UniformSampler sampler;

  explicit LrFixture(uint64_t seed)
      : usa(BuildUsaScenario({.num_pois = 5000, .seed = seed})),
        server(usa.dataset.get(), {.max_k = 10}),
        sampler(usa.dataset->box()) {}
};

void BM_LrExactCell(benchmark::State& state, bool memoize) {
  static const LrFixture* fixture = new LrFixture(11);
  const auto& positions = fixture->usa.dataset->Positions();
  LrClient client(&fixture->server,
                  {.k = 5, .memoize_queries = memoize});
  History history;
  LrCellComputer computer(&client, &history, &fixture->sampler);
  int id = 0;
  for (auto _ : state) {
    id = (id + 1) % 256;  // neighboring ids → overlapping vertex probes
    benchmark::DoNotOptimize(
        computer.ComputeExactCell(id, positions[id], 2).area);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["queries"] = static_cast<double>(client.queries_used());
  state.counters["memo_hits"] = static_cast<double>(client.memo_hits());
}

void BM_LrExactCellNoMemo(benchmark::State& state) {
  BM_LrExactCell(state, /*memoize=*/false);
}
void BM_LrExactCellMemo(benchmark::State& state) {
  BM_LrExactCell(state, /*memoize=*/true);
}
BENCHMARK(BM_LrExactCellNoMemo);
BENCHMARK(BM_LrExactCellMemo);

// ---------------------------------------------------------------------------
// Backend crossover: KdTree vs LearnedIndex at 10^5..10^7 points. Build
// cost and k=10 query cost per backend over the *same* point sets, plus an
// in-process dual-implementation comparison (BM_KnnCrossover) — both
// backends timed alternately inside one process, min over reps, results
// checksummed equal — because cross-process timings on this 1-core VM are
// bimodal under load. The curves are tracked in BENCH_hotpath.json
// ("learned_vs_kdtree"); DESIGN.md §4.10 discusses where and why the
// learned index wins.

const std::vector<Vec2>& PointsOfSize(int64_t n) {
  static auto* cache = new std::map<int64_t, std::vector<Vec2>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, RandomPoints(static_cast<int>(n), 2)).first;
  }
  return it->second;
}

const KdTree& KdOfSize(int64_t n) {
  static auto* cache = new std::map<int64_t, KdTree>();
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, PointsOfSize(n)).first;
  return it->second;
}

const LearnedIndex& LearnedOfSize(int64_t n) {
  static auto* cache = new std::map<int64_t, LearnedIndex>();
  auto it = cache->find(n);
  if (it == cache->end()) it = cache->emplace(n, PointsOfSize(n)).first;
  return it->second;
}

std::vector<Vec2> QueryBatch(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> qs;
  qs.reserve(count);
  for (int i = 0; i < count; ++i) qs.push_back(kBox.SamplePoint(rng));
  return qs;
}

void BM_BuildKdTree(benchmark::State& state) {
  const auto& pts = PointsOfSize(state.range(0));
  for (auto _ : state) {
    const KdTree tree(pts);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildKdTree)
    ->Arg(100000)->Arg(1000000)->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

void BM_BuildLearned(benchmark::State& state) {
  const auto& pts = PointsOfSize(state.range(0));
  for (auto _ : state) {
    const LearnedIndex index(pts);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildLearned)
    ->Arg(100000)->Arg(1000000)->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

template <typename Index>
void KnnLoop(benchmark::State& state, const Index& index) {
  const auto queries = QueryBatch(1024, 99);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Nearest(queries[i++ & 1023], 10));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Knn10KdTree(benchmark::State& state) {
  KnnLoop(state, KdOfSize(state.range(0)));
}
BENCHMARK(BM_Knn10KdTree)->Arg(100000)->Arg(1000000)->Arg(10000000);

void BM_Knn10Learned(benchmark::State& state) {
  KnnLoop(state, LearnedOfSize(state.range(0)));
}
BENCHMARK(BM_Knn10Learned)->Arg(100000)->Arg(1000000)->Arg(10000000);

// One process, both backends, alternating; min over reps defeats load
// spikes, and the checksum pins down that both answered every query
// identically (the bit-identical contract). Every rep draws a FRESH query
// batch from a continuing stream: replaying one small batch would keep
// each backend's touched nodes/blocks resident in the LLC after the first
// pass, and that warm regime flatters the kd-tree's pointer-chasing —
// estimator workloads do not re-ask the same point. Counters carry the
// result; the benchmark's own timing (one empty-ish iteration) is
// irrelevant.
void BM_KnnCrossover(benchmark::State& state) {
  const int64_t n = state.range(0);
  const KdTree& kd = KdOfSize(n);
  const LearnedIndex& learned = LearnedOfSize(n);
  constexpr int kReps = 6;
  constexpr int kQueriesPerRep = 4000;
  using Clock = std::chrono::steady_clock;
  Rng qrng(101);

  auto run_batch = [&](const auto& index, const std::vector<Vec2>& qs,
                       uint64_t* checksum) {
    const auto t0 = Clock::now();
    uint64_t ck = 0;
    for (const Vec2& q : qs) {
      for (const Neighbor& nb : index.Nearest(q, 10)) {
        ck = ck * 1315423911u + static_cast<uint64_t>(nb.index);
      }
    }
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(ck);
    *checksum = ck;
    return std::chrono::duration<double>(t1 - t0).count();
  };

  double kd_best = 1e300, learned_best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<Vec2> qs;
    qs.reserve(kQueriesPerRep);
    for (int i = 0; i < kQueriesPerRep; ++i) qs.push_back(kBox.SamplePoint(qrng));
    uint64_t kd_ck = 0, learned_ck = 0;
    const double l = run_batch(learned, qs, &learned_ck);
    const double t = run_batch(kd, qs, &kd_ck);
    if (kd_ck != learned_ck) {
      state.SkipWithError("kd and learned kNN results diverged");
      return;
    }
    learned_best = std::min(learned_best, l);
    kd_best = std::min(kd_best, t);
  }
  uint64_t sink = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink);
  }
  const double per_query = 1e9 / static_cast<double>(kQueriesPerRep);
  state.counters["kd_ns_per_query"] = kd_best * per_query;
  state.counters["learned_ns_per_query"] = learned_best * per_query;
  state.counters["learned_speedup"] = kd_best / learned_best;
}
BENCHMARK(BM_KnnCrossover)
    ->Arg(100000)->Arg(1000000)->Arg(10000000)
    ->Iterations(1);

void BM_LbsServerQuery(benchmark::State& state) {
  static const LrFixture* fixture = new LrFixture(11);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture->server.Query(fixture->usa.dataset->box().SamplePoint(rng),
                              10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbsServerQuery);

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
