// Hot-path micro-benchmarks: the three substrate layers every estimator
// query exercises — kd-tree kNN search, top-k region refinement, and the
// end-to-end LR cell computation — plus the client-side query memo. These
// are the numbers tracked in BENCH_hotpath.json (regenerate with
//   ./build/bench/micro_hotpath --benchmark_format=json \
//       > BENCH_hotpath.json
// on a quiet machine; see DESIGN.md "Hot path & complexity").

#include <vector>

#include <benchmark/benchmark.h>

#include "core/history.h"
#include "core/lr_cell.h"
#include "core/sampler.h"
#include "geometry/topk_region.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "spatial/kdtree.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

// ---------------------------------------------------------------------------
// Layer 1: kd-tree kNN. Same workload shapes as micro_substrates so the
// before/after numbers in BENCH_hotpath.json line up with the seed run.

void BM_KnnQuery(benchmark::State& state) {
  const auto pts = RandomPoints(100000, 2);
  const KdTree tree(pts);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(kBox.SamplePoint(rng),
                                          static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_KnnQueryFiltered(benchmark::State& state) {
  const auto pts = RandomPoints(100000, 2);
  const KdTree tree(pts);
  Rng rng(3);
  const IndexFilter filter = [](int id) { return (id & 3) != 0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.NearestFiltered(
        kBox.SamplePoint(rng), static_cast<int>(state.range(0)), filter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQueryFiltered)->Arg(10);

// ---------------------------------------------------------------------------
// Layer 2: top-k region refinement. The batch benchmark measures one
// from-scratch ComputeTopkRegion over n constraint points (what every
// refinement round used to pay); the incremental benchmark measures a full
// refinement schedule — points arriving in batches across rounds — through
// the TopkRegionRefiner versus recomputing from scratch each round.

void BM_TopkRegionBatch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(64, 7);
  const Vec2 focal = pts[0];
  const std::vector<Vec2> others(pts.begin() + 1, pts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTopkRegion(focal, others, kBox, k).area);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopkRegionBatch)->Arg(1)->Arg(3)->Arg(5);

constexpr int kRounds = 8;
constexpr int kPointsPerRound = 8;

void BM_RefineScratch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(kRounds * kPointsPerRound + 1, 7);
  const Vec2 focal = pts[0];
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  for (auto _ : state) {
    double area = 0.0;
    std::vector<Vec2> known;
    for (int r = 0; r < kRounds; ++r) {
      known.insert(known.end(), pts.begin() + 1 + r * kPointsPerRound,
                   pts.begin() + 1 + (r + 1) * kPointsPerRound);
      area = ComputeTopkRegion(focal, known, domain, k).area;
    }
    benchmark::DoNotOptimize(area);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_RefineScratch)->Arg(1)->Arg(3)->Arg(5);

void BM_RefineIncremental(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(kRounds * kPointsPerRound + 1, 7);
  const Vec2 focal = pts[0];
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  for (auto _ : state) {
    double area = 0.0;
    TopkRegionRefiner refiner(domain, k);
    for (int r = 0; r < kRounds; ++r) {
      refiner.AddPoints(
          focal, std::vector<Vec2>(pts.begin() + 1 + r * kPointsPerRound,
                                   pts.begin() + 1 + (r + 1) * kPointsPerRound));
      area = refiner.Region().area;
    }
    benchmark::DoNotOptimize(area);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_RefineIncremental)->Arg(1)->Arg(3)->Arg(5);

// ---------------------------------------------------------------------------
// Layer 3: end-to-end LR rounds — the exact Theorem-1 cell computation an
// LR-LBS-AGG sample performs, including every interface query against the
// simulated server. One iteration = one full cell (several refinement
// rounds). The memo benchmark re-computes cells of neighboring tuples,
// which re-probe overlapping vertex sets — the memo's target workload.

struct LrFixture {
  UsaScenario usa;
  LbsServer server;
  UniformSampler sampler;

  explicit LrFixture(uint64_t seed)
      : usa(BuildUsaScenario({.num_pois = 5000, .seed = seed})),
        server(usa.dataset.get(), {.max_k = 10}),
        sampler(usa.dataset->box()) {}
};

void BM_LrExactCell(benchmark::State& state, bool memoize) {
  static const LrFixture* fixture = new LrFixture(11);
  const auto& positions = fixture->usa.dataset->Positions();
  LrClient client(&fixture->server,
                  {.k = 5, .memoize_queries = memoize});
  History history;
  LrCellComputer computer(&client, &history, &fixture->sampler);
  int id = 0;
  for (auto _ : state) {
    id = (id + 1) % 256;  // neighboring ids → overlapping vertex probes
    benchmark::DoNotOptimize(
        computer.ComputeExactCell(id, positions[id], 2).area);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["queries"] = static_cast<double>(client.queries_used());
  state.counters["memo_hits"] = static_cast<double>(client.memo_hits());
}

void BM_LrExactCellNoMemo(benchmark::State& state) {
  BM_LrExactCell(state, /*memoize=*/false);
}
void BM_LrExactCellMemo(benchmark::State& state) {
  BM_LrExactCell(state, /*memoize=*/true);
}
BENCHMARK(BM_LrExactCellNoMemo);
BENCHMARK(BM_LrExactCellMemo);

void BM_LbsServerQuery(benchmark::State& state) {
  static const LrFixture* fixture = new LrFixture(11);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture->server.Query(fixture->usa.dataset->box().SamplePoint(rng),
                              10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbsServerQuery);

}  // namespace
}  // namespace lbsagg

BENCHMARK_MAIN();
