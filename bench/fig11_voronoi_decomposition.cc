// Figure 11: the Voronoi decomposition of Starbucks stores in the US. The
// paper's point is the enormous spread of cell sizes — sub-km² cells in
// cities against cells of hundreds of thousands of km² in rural areas —
// which is what motivates census-weighted query sampling (§5.2).

#include <cstdio>
#include <vector>

#include "common/bench_common.h"
#include "geometry/voronoi_diagram.h"
#include "util/stats.h"
#include "util/svg.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;

  UsaOptions options;
  options.num_pois = 200000;  // full-scale decomposition: the substrate is fast
  options.seed = 2015;
  const UsaScenario usa = BuildUsaScenario(options);

  // The "Starbucks" subset, as the paper enumerated.
  std::vector<Vec2> starbucks;
  for (const Tuple& t : usa.dataset->tuples()) {
    if (std::get<std::string>(t.values[usa.columns.name]) == "Starbucks") {
      starbucks.push_back(t.pos);
    }
  }
  std::printf("Figure 11 — Voronoi decomposition of %zu Starbucks-like "
              "chain stores (plane %.0fx%.0f km)\n\n",
              starbucks.size(), usa.dataset->box().width(),
              usa.dataset->box().height());

  const VoronoiDiagram diagram =
      VoronoiDiagram::Build(starbucks, usa.dataset->box());

  std::vector<double> areas;
  areas.reserve(diagram.size());
  for (const ConvexPolygon& cell : diagram.cells()) {
    areas.push_back(cell.Area());
  }
  const Summary s = Summarize(areas);

  Table table({"statistic", "cell area (km^2)"});
  table.AddRow({"cells", Table::Int(static_cast<long long>(s.count))});
  table.AddRow({"min", Table::Num(s.min, 2)});
  table.AddRow({"p25", Table::Num(s.p25, 2)});
  table.AddRow({"median", Table::Num(s.median, 2)});
  table.AddRow({"p75", Table::Num(s.p75, 2)});
  table.AddRow({"p95", Table::Num(s.p95, 2)});
  table.AddRow({"max", Table::Num(s.max, 2)});
  table.AddRow({"max / min", Table::Num(s.max / std::max(s.min, 1e-9), 0)});
  table.Print();

  std::printf("\nDecomposition sanity: cell areas sum to %.4f of the plane "
              "(must be 1).\n",
              diagram.TotalArea() / usa.dataset->box().Area());
  // Cross-check the decomposition with the independent Fortune's-sweep
  // backend on a 1000-store subsample (the double-precision sweep is exact
  // at this scale; the extended-precision Bowyer–Watson handles the full
  // set).
  std::vector<Vec2> sample(starbucks.begin(),
                           starbucks.begin() + std::min<size_t>(
                                                   1000, starbucks.size()));
  const VoronoiDiagram by_delaunay =
      VoronoiDiagram::Build(sample, usa.dataset->box());
  const VoronoiDiagram by_fortune = VoronoiDiagram::Build(
      sample, usa.dataset->box(), VoronoiBackend::kFortune);
  int agreeing = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double a = by_delaunay.Cell(static_cast<int>(i)).Area();
    const double b = by_fortune.Cell(static_cast<int>(i)).Area();
    if (std::abs(a - b) <= 1e-6 * std::max(a, 1.0)) ++agreeing;
  }
  std::printf("Cross-check vs Fortune's sweep line (1000-store subsample): "
              "%d/%zu cells identical (the remainder sit in city blocks "
              "with ~1e-7 km separations, beyond the double-precision "
              "sweep's envelope — see geometry/fortune.h).\n",
              agreeing, sample.size());
  std::printf("The 4-5 orders of magnitude between urban and rural cells "
              "reproduce the paper's skew, justifying weighted sampling.\n");

  // Render the decomposition like the paper's Figure 11: cells shaded by
  // log-area (dark = small urban cells), stores as dots.
  SvgCanvas canvas(usa.dataset->box(), 1400.0);
  const double log_min = std::log(std::max(s.min, 1e-6));
  const double log_max = std::log(std::max(s.max, 1.0));
  for (size_t i = 0; i < diagram.size(); ++i) {
    const double area = diagram.Cell(static_cast<int>(i)).Area();
    const double t =
        1.0 - (std::log(std::max(area, 1e-6)) - log_min) /
                  std::max(log_max - log_min, 1e-9);
    canvas.AddPolygon(diagram.Cell(static_cast<int>(i)),
                      SvgCanvas::HeatColor(t), "#404040", 0.4);
  }
  for (const Vec2& p : starbucks) canvas.AddPoint(p, 0.8, "black");
  const char* svg_path = "fig11_voronoi.svg";
  if (canvas.WriteFile(svg_path)) {
    std::printf("Rendered the decomposition to %s (dark cells = dense "
                "urban areas).\n", svg_path);
  }
  bench::MaybeWriteRunReport("fig11_voronoi_decomposition", {});
  return 0;
}
