// Figure 14: query cost vs relative error for COUNT(schools in US), the
// three algorithms. Expected shape: LR-LBS-AGG cheapest at every error
// level; LNR-LBS-AGG beats LR-LBS-NNO despite never seeing a coordinate.

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  CensusSampler sampler(&usa.census);

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "school"), "COUNT(schools)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));

  const auto traces = SweepEstimators(
      {
          MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 14 — query cost vs relative error, COUNT(schools in US)",
      traces, truth);
  MaybeWriteRunReport("fig14_count_schools", traces);
  return 0;
}
