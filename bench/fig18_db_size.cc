// Figure 18: query cost to reach relative error 0.15 as the database grows
// (25% .. 100% of the POIs). Expected shape: nearly flat for all methods —
// a sampling approach's cost depends on the variance structure, not the
// database size — with only a mild rise from the denser Voronoi topology.
//
// The per-fraction scenarios (subsample + census grid + ground truth) are
// independent, so their construction fans out over worker threads. Each
// fraction owns a seed decoupled from the others (mixed from one base), so
// the subsamples no longer share a sequential RNG stream and the build is
// a pure function of the fraction for any thread count.

#include <cstdio>
#include <memory>
#include <thread>

#include "common/bench_common.h"
#include "geometry/loc_key.h"  // SplitMix64
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.num_pois = 8000;
  config.runs = 12;
  config.budget = 18000;
  if (!ApplyBenchFlags(argc, argv, &config)) return 1;
  const double target_error = 0.25;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);

  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};

  // One prebuilt scenario per fraction, constructed in parallel.
  struct SizedScenario {
    std::unique_ptr<Dataset> dataset;
    std::unique_ptr<CensusGrid> census;
    double truth = 0.0;
  };
  std::vector<SizedScenario> scenarios(fractions.size());
  {
    std::vector<std::thread> builders;
    builders.reserve(fractions.size());
    for (size_t i = 0; i < fractions.size(); ++i) {
      builders.emplace_back([&, i] {
        const double fraction = fractions[i];
        Rng rng(SplitMix64(777 ^ (0x9e3779b97f4a7c15ull * (i + 1))));
        SizedScenario& s = scenarios[i];
        s.dataset = std::make_unique<Dataset>(
            fraction < 1.0 ? usa.dataset->Subsample(fraction, rng)
                           : Dataset(*usa.dataset));
        // Census from the *visible* layout; the analyst can always build
        // one.
        Rng census_rng(1);
        s.census = std::make_unique<CensusGrid>(
            CensusGrid::FromPoints(s.dataset->box(), 40, 25,
                                   s.dataset->Positions(), 0.3, census_rng));
        s.truth =
            s.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));
      });
    }
    for (std::thread& t : builders) t.join();
  }

  Table table({"fraction of POIs", "LR-LBS-NNO", "LR-LBS-AGG",
               "LNR-LBS-AGG"});

  std::map<std::string, std::vector<RunResult>> all_traces;
  for (size_t i = 0; i < fractions.size(); ++i) {
    const double fraction = fractions[i];
    const SizedScenario& scenario = scenarios[i];
    LbsServer server(scenario.dataset.get(),
                     {.max_k = config.k, .index_backend = config.index});
    CensusSampler sampler(scenario.census.get());

    const AggregateSpec spec = AggregateSpec::CountWhere(
        ColumnEquals(usa.columns.category, "school"), "COUNT(schools)");

    const auto traces = SweepEstimators(
        {
            MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
            MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
            MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                        DefaultLnrBenchOptions()),
        },
        config.runs, config.budget, config.seed_base);

    const std::string suffix =
        "@" + Table::Num(100.0 * fraction, 0) + "%";
    for (const auto& [name, runs] : traces) all_traces[name + suffix] = runs;

    std::vector<std::string> row = {Table::Num(100.0 * fraction, 0) + "%"};
    for (const char* name : {"LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG"}) {
      const ErrorCurve curve = ComputeErrorCurve(traces.at(name),
                                                 scenario.truth);
      const double cost = QueryCostForError(curve, target_error);
      if (curve.mean_rel_error.back() <= target_error ||
          cost < static_cast<double>(curve.checkpoints.back())) {
        row.push_back(Table::Int(static_cast<long long>(cost)));
      } else {
        row.push_back("> " + Table::Int(static_cast<long long>(config.budget)));
      }
    }
    table.AddRow(std::move(row));
  }

  std::printf("Figure 18 — query cost to reach relative error %.2f vs "
              "database size, COUNT(schools)\n\n", target_error);
  table.Print();
  MaybeWriteRunReport("fig18_db_size", all_traces);
  return 0;
}
