// Figure 18: query cost to reach relative error 0.15 as the database grows
// (25% .. 100% of the POIs). Expected shape: nearly flat for all methods —
// a sampling approach's cost depends on the variance structure, not the
// database size — with only a mild rise from the denser Voronoi topology.

#include <cstdio>

#include "common/bench_common.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.runs = 12;
  config.budget = 18000;
  const double target_error = 0.25;

  UsaOptions uopts;
  uopts.num_pois = 8000;
  const UsaScenario usa = BuildUsaScenario(uopts);

  Table table({"fraction of POIs", "LR-LBS-NNO", "LR-LBS-AGG",
               "LNR-LBS-AGG"});

  std::map<std::string, std::vector<RunResult>> all_traces;
  Rng rng(777);
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const Dataset sub = fraction < 1.0 ? usa.dataset->Subsample(fraction, rng)
                                       : Dataset(*usa.dataset);
    LbsServer server(&sub, {.max_k = config.k});
    // Census from the *visible* layout; the analyst can always build one.
    Rng census_rng(1);
    const CensusGrid census = CensusGrid::FromPoints(
        sub.box(), 40, 25, sub.Positions(), 0.3, census_rng);
    CensusSampler sampler(&census);

    const AggregateSpec spec = AggregateSpec::CountWhere(
        ColumnEquals(usa.columns.category, "school"), "COUNT(schools)");
    const double truth =
        sub.GroundTruthCount(CategoryIs(usa.columns, "school"));

    const auto traces = SweepEstimators(
        {
            MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
            MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
            MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                        DefaultLnrBenchOptions()),
        },
        config.runs, config.budget, config.seed_base);

    const std::string suffix =
        "@" + Table::Num(100.0 * fraction, 0) + "%";
    for (const auto& [name, runs] : traces) all_traces[name + suffix] = runs;

    std::vector<std::string> row = {Table::Num(100.0 * fraction, 0) + "%"};
    for (const char* name : {"LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG"}) {
      const ErrorCurve curve = ComputeErrorCurve(traces.at(name), truth);
      const double cost = QueryCostForError(curve, target_error);
      if (curve.mean_rel_error.back() <= target_error ||
          cost < static_cast<double>(curve.checkpoints.back())) {
        row.push_back(Table::Int(static_cast<long long>(cost)));
      } else {
        row.push_back("> " + Table::Int(static_cast<long long>(config.budget)));
      }
    }
    table.AddRow(std::move(row));
  }

  std::printf("Figure 18 — query cost to reach relative error %.2f vs "
              "database size, COUNT(schools)\n\n", target_error);
  table.Print();
  MaybeWriteRunReport("fig18_db_size", all_traces);
  return 0;
}
