// Figure 20: ablation of the §3.2 error-reduction strategies. Variants add
// the techniques one at a time in the order of the paper:
//   AGG-0  baseline Algorithm 1 (top-1 cells from the whole region)
//   AGG-1  + faster initialization (§3.2.1)
//   AGG-2  + leveraging history (§3.2.2)
//   AGG-3  + adaptive top-h selection (§3.2.3)
//   AGG    + Monte-Carlo upper/lower bounds (§3.2.4) — the full algorithm

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 15000;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  CensusSampler sampler(&usa.census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "restaurant"));

  LrAggOptions agg0;
  agg0.adaptive_h = false;
  agg0.fixed_h = 1;
  agg0.cell.fast_init = false;
  agg0.cell.use_history = false;
  agg0.cell.monte_carlo = false;

  LrAggOptions agg1 = agg0;
  agg1.cell.fast_init = true;

  LrAggOptions agg2 = agg1;
  agg2.cell.use_history = true;

  LrAggOptions agg3 = agg2;
  agg3.adaptive_h = true;

  LrAggOptions full = agg3;
  full.cell.monte_carlo = true;

  const auto traces = SweepEstimators(
      {
          MakeLrSpec("LR-LBS-AGG-0", &server, &sampler, spec, config.k, agg0),
          MakeLrSpec("LR-LBS-AGG-1", &server, &sampler, spec, config.k, agg1),
          MakeLrSpec("LR-LBS-AGG-2", &server, &sampler, spec, config.k, agg2),
          MakeLrSpec("LR-LBS-AGG-3", &server, &sampler, spec, config.k, agg3),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k, full),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 20 — query savings of the error-reduction strategies "
      "(COUNT(restaurants); each variant adds one technique)",
      traces, truth);
  MaybeWriteRunReport("fig20_error_reduction", traces);
  return 0;
}
