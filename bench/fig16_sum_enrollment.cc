// Figure 16: query cost vs relative error for SUM(enrollment) over schools.
// A heavy-tailed SUM: harder than COUNT for every method; the ordering of
// the three algorithms must still hold.

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 20000;
  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  CensusSampler sampler(&usa.census);

  const int enr = usa.columns.enrollment;
  const AggregateSpec spec = AggregateSpec::Sum(enr, "SUM(enrollment)");
  const double truth = usa.dataset->GroundTruthSum(
      nullptr,
      [enr](const Tuple& t) { return std::get<double>(t.values[enr]); });

  const auto traces = SweepEstimators(
      {
          MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 16 — query cost vs relative error, SUM(school enrollment)",
      traces, truth);
  MaybeWriteRunReport("fig16_sum_enrollment", traces);
  return 0;
}
