// Figure 15: query cost vs relative error for COUNT(restaurants in US) —
// like Figure 14 but on the dominant, denser category.

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  CensusSampler sampler(&usa.census);

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "restaurant"));

  const auto traces = SweepEstimators(
      {
          MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 15 — query cost vs relative error, COUNT(restaurants in US)",
      traces, truth);
  MaybeWriteRunReport("fig15_count_restaurants", traces);
  return 0;
}
