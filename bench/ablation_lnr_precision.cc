// Ablation: the LNR precision knob. Theorem 2 / Corollary 2 bound the cell
// (and hence estimation) bias by the maximum edge error ε, which shrinks as
// the binary-search tolerances δ, δ' do — at O(log(1/ε)) queries per edge.
// This bench quantifies the trade-off: inferred-cell area error and queries
// per cell across four precision settings.

#include <cstdio>
#include <vector>

#include "common/bench_common.h"
#include "core/ground_truth.h"
#include "core/lnr_cell.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;

  ChinaOptions copts;
  copts.num_users = 2000;
  const ChinaScenario china = BuildChinaScenario(copts);
  LbsServer server(china.dataset.get(), {.max_k = 1});
  GroundTruthOracle oracle(china.dataset->Positions(), china.dataset->box());

  struct Setting {
    const char* label;
    double delta;
    double delta_prime;
  };
  const Setting settings[] = {
      {"coarse  (1e-4, 1e-2)", 1e-4, 1e-2},
      {"medium  (1e-6, 1e-4)", 1e-6, 1e-4},
      {"fine    (1e-8, 1e-5)", 1e-8, 1e-5},
      {"precise (1e-10, 1e-6)", 1e-10, 1e-6},
  };

  Table table({"delta setting", "mean |area err|", "max |area err|",
               "queries / cell"});
  for (const Setting& s : settings) {
    LnrClient client(&server, {.k = 1});
    LnrCellOptions opts;
    opts.search.delta_fraction = s.delta;
    opts.search.delta_prime_fraction = s.delta_prime;
    LnrCellComputer computer(&client, opts);

    Rng rng(99);
    std::vector<double> errors;
    uint64_t queries = 0;
    int cells = 0;
    while (cells < 40) {
      const Vec2 q = china.dataset->box().SamplePoint(rng);
      const int id = client.Top1(q);
      if (id < 0) continue;
      const uint64_t before = client.queries_used();
      const auto cell = computer.ComputeTop1Cell(id, q);
      queries += client.queries_used() - before;
      if (!cell.has_value() || cell->cell.IsEmpty()) continue;
      ++cells;
      const double truth = oracle.TopkCellArea(id, 1);
      errors.push_back(std::abs(cell->area - truth) / truth);
    }
    const Summary sum = Summarize(errors);
    table.AddRow({s.label, Table::Num(sum.mean, 5), Table::Num(sum.max, 5),
                  Table::Num(static_cast<double>(queries) / cells, 0)});
  }

  std::printf("Ablation — LNR cell accuracy vs binary-search precision "
              "(Theorem 2 / Corollary 2): bias falls off while query cost "
              "grows only logarithmically\n\n");
  table.Print();
  bench::MaybeWriteRunReport("ablation_lnr_precision", {});
  return 0;
}
