// Extension (§5.4): the paper notes the LR machinery "readily applies" to
// kNN interfaces over higher-dimensional points. This bench demonstrates
// unbiased COUNT estimation over a 3-D hidden dataset: Theorem 1 with
// bisector planes + polytope vertex enumeration, finished by the §3.2.4
// Monte-Carlo trial estimator so no exact polytope volume is ever needed.

#include <cstdio>

#include "core/lr3_agg.h"
#include "lbs3/lbs3.h"
#include "util/stats.h"
#include "util/table.h"
#include "common/bench_common.h"

int main() {
  using namespace lbsagg;

  const Box3 box({0, 0, 0}, {1000, 1000, 1000});
  Dataset3 dataset(box);
  Rng rng(2015);
  const int n = 500;
  for (int i = 0; i < n; ++i) dataset.Add(box.SamplePoint(rng));

  Table table({"budget (queries)", "mean estimate", "mean rel. error",
               "runs"});
  for (const int samples : {25, 50, 100, 200}) {
    RunningStats estimates;
    double rel = 0.0;
    uint64_t queries = 0;
    const int runs = 10;
    for (int r = 0; r < runs; ++r) {
      Lr3Client client(&dataset, 3);
      Lr3AggOptions opts;
      opts.seed = 100 + r;
      Lr3AggEstimator est(&client, opts);
      for (int i = 0; i < samples; ++i) est.Step();
      estimates.Add(est.Estimate());
      rel += RelativeError(est.Estimate(), n) / runs;
      queries += client.queries_used() / runs;
    }
    table.AddRow({Table::Int(static_cast<long long>(queries)),
                  Table::Num(estimates.mean(), 1), Table::Num(rel, 3),
                  Table::Int(runs)});
  }

  std::printf("Extension §5.4 — COUNT(*) over a 3-D kNN interface "
              "(500 tuples in a 1000^3 region; Theorem 1 with bisector "
              "planes + Monte-Carlo trials)\n\n");
  table.Print();
  bench::MaybeWriteRunReport("ext_higher_dimensions", {});
  return 0;
}
