// Figure 17: AVG(rating) of restaurants in one metro area (the paper used
// Austin, TX). The region of interest B is the metro bounding box — the
// analyst chooses B, so the service is queried only inside it. AVG is
// estimated as SUM/COUNT (§1.3); ratio estimators converge much faster
// than the absolute aggregates of Figures 14-16.

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 8000;

  UsaOptions uopts;
  uopts.num_pois = 40000;  // national dataset; the metro holds a slice of it
  const UsaScenario usa = BuildUsaScenario(uopts);

  // The metro: a 400x400 km box centered on the densest census cell.
  Vec2 metro_center = usa.dataset->box().Center();
  double best_density = 0.0;
  for (int ix = 0; ix < usa.census.nx(); ++ix) {
    for (int iy = 0; iy < usa.census.ny(); ++iy) {
      if (usa.census.CellDensity(ix, iy) > best_density) {
        best_density = usa.census.CellDensity(ix, iy);
        metro_center = usa.census.CellBox(ix, iy).Center();
      }
    }
  }
  const Box metro(usa.dataset->box().Clamp(metro_center - Vec2{200, 200}),
                  usa.dataset->box().Clamp(metro_center + Vec2{200, 200}));

  // The analyst's region of interest: rebuild the hidden database restricted
  // to the metro (equivalently, every query and every cell is clipped to B).
  Dataset metro_db(metro, usa.dataset->schema());
  for (const Tuple& t : usa.dataset->tuples()) {
    if (metro.Contains(t.pos)) metro_db.Add(t.pos, t.values);
  }

  LbsServer server(&metro_db, {.max_k = config.k});
  UniformSampler sampler(metro);

  const int rating = usa.columns.rating;
  const AggregateSpec spec = AggregateSpec::AvgWhere(
      rating, ColumnEquals(usa.columns.category, "restaurant"),
      "AVG(rating) of restaurants");
  const TupleFilter is_restaurant = CategoryIs(usa.columns, "restaurant");
  const double truth =
      metro_db.GroundTruthSum(is_restaurant,
                              [rating](const Tuple& t) {
                                return std::get<double>(t.values[rating]);
                              }) /
      metro_db.GroundTruthCount(is_restaurant);

  const auto traces = SweepEstimators(
      {
          MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 17 — query cost vs relative error, AVG(restaurant rating) in "
      "one metro (" +
          std::to_string(metro_db.size()) + " POIs)",
      traces, truth, {0.10, 0.05, 0.03, 0.02, 0.01});
  MaybeWriteRunReport("fig17_avg_ratings", traces);
  return 0;
}
