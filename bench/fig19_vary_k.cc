// Figure 19: query cost to reach relative error 0.15 as a function of how
// much of the top-k result is used. Fixed variants use all top-K tuples
// (h = K) on a k = K interface; "Adaptive" is Algorithm 4 on the k = 5
// interface, choosing h per tuple from the history upper bounds λ_h.
// Expected shape: the adaptive strategy undercuts every fixed choice by
// ~10% (the paper's consistent saving).

#include <cstdio>

#include "common/bench_common.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.runs = 10;
  config.budget = 15000;
  // Per-family targets: the LNR estimator pays O(log 1/ε) per edge, so its
  // practical regime at this budget is a looser error level.
  const double lr_target = 0.15;
  const double lnr_target = 0.30;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  CensusSampler sampler(&usa.census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "school"), "COUNT(schools)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));

  auto cost_for = [&](const EstimatorSpec& est_spec, double target,
                      int runs = 0, uint64_t budget = 0) {
    if (runs == 0) runs = config.runs;
    if (budget == 0) budget = config.budget;
    const auto traces =
        SweepEstimators({est_spec}, runs, budget, config.seed_base);
    const ErrorCurve curve =
        ComputeErrorCurve(traces.at(est_spec.name), truth);
    const double cost = QueryCostForError(curve, target);
    if (curve.mean_rel_error.back() <= target ||
        cost < static_cast<double>(curve.checkpoints.back())) {
      return Table::Int(static_cast<long long>(cost));
    }
    return "> " + Table::Int(static_cast<long long>(config.budget));
  };

  Table table({"K", "LR-LBS-AGG @0.15", "LNR-LBS-AGG @0.30"});
  for (int k = 1; k <= 5; ++k) {
    LbsServer server(usa.dataset.get(), {.max_k = k});
    LrAggOptions lr_opts;
    lr_opts.adaptive_h = false;
    lr_opts.fixed_h = k;
    std::vector<std::string> row = {Table::Int(k)};
    row.push_back(
        cost_for(MakeLrSpec("lr", &server, &sampler, spec, k, lr_opts),
                 lr_target));
    // LNR: K = 1 uses the convex top-1 cell; K > 1 the §4.2 top-k cells.
    if (k <= 3) {
      LnrAggOptions lnr_opts = DefaultLnrBenchOptions();
      lnr_opts.use_topk_cells = k > 1;
      // The §4.2 top-k inference is the costly path: fewer, shorter runs.
      row.push_back(
          cost_for(MakeLnrSpec("lnr", &server, &sampler, spec, k, lnr_opts),
                   lnr_target, /*runs=*/6, /*budget=*/10000));
    } else {
      row.push_back("-");  // top-k cell inference cost grows steeply with K
    }
    table.AddRow(std::move(row));
  }
  {
    LbsServer server(usa.dataset.get(), {.max_k = 5});
    LrAggOptions adaptive;
    adaptive.adaptive_h = true;
    std::vector<std::string> row = {"Adaptive"};
    row.push_back(
        cost_for(MakeLrSpec("lr", &server, &sampler, spec, 5, adaptive),
                 lr_target));
    row.push_back("-");
    table.AddRow(std::move(row));
  }

  std::printf("Figure 19 — query cost to reach the target relative error vs "
              "K (fixed h = K, plus the adaptive Algorithm 4), "
              "COUNT(schools); LR target %.2f, LNR target %.2f\n\n",
              lr_target, lnr_target);
  table.Print();
  MaybeWriteRunReport("fig19_vary_k", {});
  return 0;
}
