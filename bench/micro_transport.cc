// Transport-layer micro-benchmarks: overhead of the wire abstraction, cost
// of the simulated policy pipeline, and dispatcher batch throughput at
// 1/2/4/8 workers. These are the numbers tracked in BENCH_transport.json
// (regenerate with
//   ./build/bench/micro_transport --benchmark_format=json \
//       > BENCH_transport.json
// on a quiet machine; see DESIGN.md "Transport & fault model").

#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_main.h"

#include "lbs/client.h"
#include "lbs/server.h"
#include "transport/async_dispatcher.h"
#include "transport/simulated_transport.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

struct Fixture {
  UsaScenario usa;
  LbsServer server;

  explicit Fixture(uint64_t seed)
      : usa(BuildUsaScenario({.num_pois = 5000, .seed = seed})),
        server(usa.dataset.get(), {.max_k = 10}) {}
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture(11);
  return fixture;
}

SimulatedTransportOptions FlakyOptions() {
  SimulatedTransportOptions topts;
  topts.latency.kind = LatencyOptions::Kind::kLognormal;
  topts.faults.transient_error_rate = 0.05;
  topts.faults.timeout_rate = 0.02;
  topts.faults.truncate_rate = 0.03;
  topts.retry.max_attempts = 4;
  return topts;
}

// Baseline: the client wired straight to the server (no transport object).
void BM_ClientDirectWire(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  LrClient client(&fixture->server, {.k = 5});
  Rng rng(3);
  const Box& box = fixture->usa.dataset->box();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Query(box.SamplePoint(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientDirectWire);

// The same path through an explicit DirectTransport: measures the cost of
// the wire abstraction itself (one virtual dispatch + a reply struct).
void BM_ClientDirectTransport(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  DirectTransport transport(&fixture->server);
  LrClient client(&fixture->server, {.k = 5}, &transport);
  Rng rng(3);
  const Box& box = fixture->usa.dataset->box();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Query(box.SamplePoint(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClientDirectTransport);

// Policy pipeline alone (token bucket + fault/latency/backoff draws +
// metrics), no backend work.
void BM_SimulatedPrepare(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  SimulatedTransport transport(&fixture->server, FlakyOptions());
  const Vec2 q = fixture->usa.dataset->box().Center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport.Prepare(q, 5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedPrepare);

// Full simulated query: pipeline + backend kNN + truncation.
void BM_SimulatedQuery(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  SimulatedTransport transport(&fixture->server, FlakyOptions());
  Rng rng(3);
  const Box& box = fixture->usa.dataset->box();
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport.Query(box.SamplePoint(rng), 5, {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedQuery);

// Dispatcher throughput: one batch of independent probes per iteration,
// pipelined over N workers. items_per_second is the headline number
// tracked at 1/2/4/8 workers in BENCH_transport.json.
void BM_DispatcherBatch(benchmark::State& state) {
  constexpr int kBatch = 256;
  Fixture* fixture = SharedFixture();
  SimulatedTransport transport(&fixture->server, FlakyOptions());
  AsyncDispatcher dispatcher(
      &transport,
      {.num_workers = static_cast<unsigned>(state.range(0)),
       .queue_capacity = 64});
  Rng rng(3);
  const Box& box = fixture->usa.dataset->box();
  std::vector<Vec2> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) batch.push_back(box.SamplePoint(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.QueryBatch(batch, 5));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_DispatcherBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
