// Durable-log micro-benchmarks (engine/log/, DESIGN.md §4.14): the append
// path under each fsync policy (the cost a durable run adds per committed
// round), checkpoint writes, WAL replay, and full directory recovery.
// Tracked in BENCH_wal.json (regenerate with
//   ./build/bench/micro_wal --benchmark_format=json > BENCH_wal.json
// on a quiet machine). Note the fsync benchmarks measure the temp
// filesystem as much as the code — compare them across runs on the same
// machine only.

#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "common/bench_main.h"

#include "engine/log/checkpoint.h"
#include "engine/log/durable_log.h"
#include "engine/log/wal.h"

namespace lbsagg {
namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("micro_wal_" + name);
  fs::remove_all(dir);
  return dir.string();
}

engine::Observation MakeObs(int i) {
  engine::Observation obs;
  obs.tuple_id = i;
  obs.rank = 1 + i % 5;
  obs.h = 1;
  obs.has_location = true;
  obs.location = {0.5 * i, 0.25 * i};
  obs.weight = 100.0 + i;
  obs.cost = 3;
  return obs;
}

// Writes `rounds` rounds of `obs_per_round` observations each — the shape
// LR rounds produce.
void WriteRounds(engine::WalWriter* writer, int rounds, int obs_per_round,
                 uint64_t first = 0) {
  for (int r = 0; r < rounds; ++r) {
    const uint64_t round = first + static_cast<uint64_t>(r);
    writer->AppendBeginRound(round, {1.0 * r, 2.0 * r});
    engine::EvidenceRound end;
    end.round = round;
    end.queries_after = 16 * (round + 1);
    end.num_observations = static_cast<size_t>(obs_per_round);
    for (int i = 0; i < obs_per_round; ++i) {
      writer->AppendObservation(MakeObs(r * obs_per_round + i));
    }
    writer->AppendEndRound(end);
  }
}

// Append+commit cost per round under each fsync policy. Arg is the
// FsyncMode; 64 rounds of 5 observations per iteration.
void BM_WalAppendRound(benchmark::State& state) {
  const auto mode = static_cast<engine::FsyncMode>(state.range(0));
  const std::string dir = BenchDir(std::string("append_") +
                                   engine::FsyncModeName(mode));
  uint64_t next_round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    next_round = 0;
    state.ResumeTiming();
    engine::WalWriterOptions options;
    options.fsync = mode;
    engine::WalWriter writer(dir, options, next_round);
    WriteRounds(&writer, 64, 5);
    writer.Close();
    benchmark::DoNotOptimize(writer.stats().bytes);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(engine::FsyncModeName(mode));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendRound)
    ->Arg(static_cast<int>(engine::FsyncMode::kNone))
    ->Arg(static_cast<int>(engine::FsyncMode::kRound))
    ->Arg(static_cast<int>(engine::FsyncMode::kEvery));

// One atomic checkpoint write (encode + temp file + fsync + rename).
void BM_CheckpointWrite(benchmark::State& state) {
  const std::string dir = BenchDir("ckpt");
  fs::create_directories(dir);
  engine::CheckpointData data;
  data.round = 128;
  data.observations = 640;
  data.queries_used = 2048;
  data.resolver_name = "lr";
  data.resolver_state.assign(256, 'x');
  data.aggregates.push_back({"COUNT(*)", 0x1234, 41.5});
  data.aggregates.push_back({"SUM(rating)", 0x5678, 17.25});
  std::string error;
  for (auto _ : state) {
    data.round += 1;  // new file name each write, like a live run
    benchmark::DoNotOptimize(engine::WriteCheckpointFile(dir, data, &error));
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointWrite);

// Replay throughput: decode + protocol-check a committed log of N rounds.
void BM_WalReplay(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const std::string dir = BenchDir("replay_" + std::to_string(rounds));
  {
    engine::WalWriterOptions options;
    options.fsync = engine::FsyncMode::kNone;
    engine::WalWriter writer(dir, options, 0);
    WriteRounds(&writer, rounds, 5);
    writer.Close();
  }
  for (auto _ : state) {
    const engine::WalReadResult read = engine::ReadWal(dir);
    benchmark::DoNotOptimize(read.evidence.NumRounds());
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  fs::remove_all(dir);
}
BENCHMARK(BM_WalReplay)->Arg(256)->Arg(4096);

// Full directory recovery over a torn log with stale checkpoints: read,
// choose the newest usable checkpoint, truncate the tail. The directory is
// rebuilt per iteration — recovery mutates it.
void BM_Recovery(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const std::string dir = BenchDir("recover_" + std::to_string(rounds));
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    {
      engine::WalWriterOptions options;
      options.fsync = engine::FsyncMode::kNone;
      engine::WalWriter writer(dir, options, 0);
      WriteRounds(&writer, rounds, 5);
      writer.Close();
      engine::CheckpointData ckpt;
      ckpt.round = static_cast<uint64_t>(rounds) / 2;
      ckpt.observations = ckpt.round * 5;
      ckpt.queries_used = 16 * ckpt.round;
      ckpt.resolver_name = "bench";
      std::string error;
      engine::WriteCheckpointFile(dir, ckpt, &error);
    }
    // Torn tail: chop 13 bytes off the segment.
    const fs::path segment = fs::path(dir) / engine::WalSegmentName(0);
    fs::resize_file(segment, fs::file_size(segment) - 13);
    state.ResumeTiming();
    const engine::RecoveredRun rec = engine::RecoverDurableRun(dir);
    benchmark::DoNotOptimize(rec.evidence.NumRounds());
  }
  state.SetItemsProcessed(state.iterations() * rounds);
  fs::remove_all(dir);
}
BENCHMARK(BM_Recovery)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
