// Observability-plane micro-benchmarks: the per-increment cost of the
// metric cells (relaxed-atomic counter/gauge/histogram, alone and under
// thread contention), name→cell resolution, snapshot/drain, and span
// recording. These are the numbers tracked in BENCH_obs.json (regenerate
// with
//   ./build/bench/micro_obs --benchmark_format=json > BENCH_obs.json
// on a quiet machine). The end-to-end overhead budget — instrumented
// micro_hotpath within 1% of an LBSAGG_OBS_DISABLED build — is enforced
// separately by tools/check.sh.

#include <benchmark/benchmark.h>

#include "common/bench_main.h"

#include "obs/introspect/flight_recorder.h"
#include "obs/introspect/prometheus.h"
#include "obs/introspect/sampler.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace lbsagg {
namespace {

// One relaxed fetch_add through a pre-resolved ref: the steady-state cost
// every instrumented hot path pays per event.
void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const obs::CounterRef counter =
      obs::GetCounter(&registry, "bench.counter");
  for (auto _ : state) counter.Add(1);
}
BENCHMARK(BM_CounterAdd);

// The same ref shared by several threads: contended cache line, the
// worst case for dispatcher workers hammering transport.fulfills.
void BM_CounterAddContended(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  const obs::CounterRef counter =
      obs::GetCounter(&registry, "bench.contended");
  for (auto _ : state) counter.Add(1);
}
BENCHMARK(BM_CounterAddContended)->Threads(4);

// Default-constructed (unwired) ref: the cost instrumentation pays when a
// component opts out — one null test, no atomic.
void BM_CounterAddUnwired(benchmark::State& state) {
  const obs::CounterRef counter;
  for (auto _ : state) counter.Add(1);
}
BENCHMARK(BM_CounterAddUnwired);

void BM_GaugeSet(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const obs::GaugeRef gauge = obs::GetGauge(&registry, "bench.gauge");
  double v = 0.0;
  for (auto _ : state) gauge.Set(v += 1.0);
}
BENCHMARK(BM_GaugeSet);

// Binary search over decade bounds + two RMWs + a CAS on the running sum.
void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const obs::HistogramRef hist = obs::GetHistogram(
      &registry, "bench.hist", obs::DecadeBounds(1.0, 1e9));
  double v = 1.0;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1e9 ? v * 3.0 : 1.0;
  }
}
BENCHMARK(BM_HistogramObserve);

// Name→cell resolution (registry mutex + map lookup). Construction-time
// only in instrumented code; tracked to keep it that way.
void BM_GetCounterByName(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::GetCounter(&registry, "estimator.lr.rounds"));
  }
}
BENCHMARK(BM_GetCounterByName);

// Copying the full metric plane, sized like a real run report (the counter
// set flaky_service publishes is ~25 cells plus a few histograms).
void BM_Snapshot(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 25; ++i) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Add(i);
  }
  for (int i = 0; i < 3; ++i) {
    registry.GetHistogram("bench.hist." + std::to_string(i),
                          obs::DecadeBounds(1.0, 1e9))
        ->Observe(i + 1.0);
  }
  for (auto _ : state) benchmark::DoNotOptimize(registry.Snapshot());
}
BENCHMARK(BM_Snapshot);

// A span on a null tracer: the always-on cost at every instrumented scope
// when tracing is off (two predictable branches).
void BM_ScopedSpanNullTracer(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "estimator.round", "estimator");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedSpanNullTracer);

// A live span: two clock reads plus one locked vector append.
void BM_ScopedSpanActive(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "estimator.round", "estimator");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedSpanActive);

// One flight-recorder publish into a ring with headroom: a memcpy plus two
// atomics — the per-span cost the recorder adds to a traced hot path.
void BM_FlightRecorderPublish(benchmark::State& state) {
  obs::introspect::FlightRecorder recorder(1 << 16);
  obs::introspect::FlightRecord record;
  record.SetName("estimator.round");
  std::vector<obs::introspect::FlightRecord> drained;
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.TryPublish(record));
    if ((++n & 0x7fff) == 0) {
      state.PauseTiming();
      drained.clear();
      recorder.Drain(&drained);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_FlightRecorderPublish);

// Several producers CAS-claiming slots of one shared ring — dispatcher
// workers publishing spans mid-Fulfill. Drops (ring full) count, never
// block, so the loop runs flat out.
void BM_FlightRecorderPublishContended(benchmark::State& state) {
  static obs::introspect::FlightRecorder recorder(1 << 10);
  obs::introspect::FlightRecord record;
  record.SetName("transport.attempt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.TryPublish(record));
  }
}
BENCHMARK(BM_FlightRecorderPublishContended)->Threads(4);

// Draining a full ring, per record: one CAS plus a memcpy out.
void BM_FlightRecorderDrain(benchmark::State& state) {
  obs::introspect::FlightRecorder recorder(1 << 10);
  obs::introspect::FlightRecord record;
  record.SetName("service.session");
  std::vector<obs::introspect::FlightRecord> drained;
  drained.reserve(recorder.capacity());
  for (auto _ : state) {
    state.PauseTiming();
    while (recorder.TryPublish(record)) {
    }
    drained.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(recorder.Drain(&drained));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(recorder.capacity()));
}
BENCHMARK(BM_FlightRecorderDrain);

// One sampler window over a realistically sized registry: snapshot, diff
// against the previous snapshot, quantiles from the histogram deltas.
void BM_SamplerTick(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 25; ++i) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Add(i);
  }
  for (int i = 0; i < 3; ++i) {
    registry.GetHistogram("bench.hist." + std::to_string(i),
                          obs::DecadeBounds(1.0, 1e9))
        ->Observe(i + 1.0);
  }
  double now = 0.0;
  obs::introspect::TimeSeriesSampler sampler(
      {.registry = &registry,
       .clock_ms = [&now] { return now; },
       .period_ms = 1.0,
       .max_windows = 8});
  sampler.Tick();  // prime the baseline outside the loop
  for (auto _ : state) {
    registry.GetCounter("bench.counter.0")->Add(1);
    now += 1.0;
    sampler.Tick();
  }
}
BENCHMARK(BM_SamplerTick);

// Rendering the scrape page for the same registry: the full cost of one
// Prometheus pull.
void BM_PrometheusExport(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 25; ++i) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Add(i);
  }
  for (int i = 0; i < 3; ++i) {
    registry.GetHistogram("bench.hist." + std::to_string(i),
                          obs::DecadeBounds(1.0, 1e9))
        ->Observe(i + 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::introspect::ToPrometheusText(registry.Snapshot()));
  }
}
BENCHMARK(BM_PrometheusExport);

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
