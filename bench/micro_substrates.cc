// Micro-benchmarks of the substrates (google-benchmark). These are not
// paper figures — they document that the simulated LBS answers queries in
// microseconds, so the benchmark harness measures the estimators' *query
// complexity*, never the substrate's wall clock.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_main.h"

#include "core/ground_truth.h"
#include "core/sampler.h"
#include "geometry/delaunay.h"
#include "geometry/topk_region.h"
#include "geometry/voronoi_diagram.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "spatial/kdtree.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

void BM_KdTreeBuild(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    KdTree tree(pts);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KdTreeKnnQuery(benchmark::State& state) {
  const auto pts = RandomPoints(100000, 2);
  const KdTree tree(pts);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(kBox.SamplePoint(rng),
                                          static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeKnnQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_LbsServerQuery(benchmark::State& state) {
  UsaOptions opts;
  opts.num_pois = 50000;
  const UsaScenario usa = BuildUsaScenario(opts);
  const LbsServer server(usa.dataset.get(), {.max_k = 10});
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.Query(usa.dataset->box().SamplePoint(rng), 10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbsServerQuery);

void BM_DelaunayBuild(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    Delaunay d(pts);
    benchmark::DoNotOptimize(d.num_points());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DelaunayBuild)->Arg(1000)->Arg(10000);

void BM_VoronoiDiagramBuild(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
    benchmark::DoNotOptimize(vd.TotalArea());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VoronoiDiagramBuild)->Arg(1000)->Arg(10000);

void BM_TopkRegion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto pts = RandomPoints(64, 7);
  const Vec2 focal = pts[0];
  const std::vector<Vec2> others(pts.begin() + 1, pts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTopkRegion(focal, others, kBox, k).area);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopkRegion)->Arg(1)->Arg(3)->Arg(5);

void BM_GroundTruthCell(benchmark::State& state) {
  const auto pts = RandomPoints(20000, 8);
  const GroundTruthOracle oracle(pts, kBox);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.TopkCellArea(static_cast<int>(rng.UniformInt(20000)), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroundTruthCell);

void BM_CensusRegionProbability(benchmark::State& state) {
  UsaOptions opts;
  opts.num_pois = 5000;
  const UsaScenario usa = BuildUsaScenario(opts);
  const CensusSampler sampler(&usa.census);
  const GroundTruthOracle oracle(usa.dataset->Positions(), usa.dataset->box());
  const TopkRegion cell = oracle.TopkCell(123, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.RegionProbability(cell));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CensusRegionProbability);

}  // namespace
}  // namespace lbsagg

LBSAGG_BENCHMARK_MAIN();
