// Figure 21: localization accuracy. 200 targets are localized through a
// rank-only interface (§4.3): once as a clean LNR service (the paper's
// "Google Places treated as LNR"), once behind WeChat-style location
// obfuscation. The output is the paper's histogram: the share of targets
// localized within each distance band. Expected shape: the clean service
// concentrates in the first bands; obfuscation caps accuracy near its
// radius but everything still lands within ~2x of it.

#include <cstdio>
#include <vector>

#include "common/bench_common.h"
#include "core/localize.h"
#include "util/table.h"

namespace {

std::vector<double> LocalizeMany(const lbsagg::ChinaScenario& scenario,
                                 double obfuscation_km, int targets) {
  using namespace lbsagg;
  ServerOptions sopts;
  sopts.max_k = 1;
  sopts.obfuscation_radius = obfuscation_km;
  LbsServer server(scenario.dataset.get(), sopts);
  LnrClient client(&server, {.k = 1});
  Localizer localizer(&client);

  Rng rng(4242);
  std::vector<double> errors;
  int attempts = 0;
  while (static_cast<int>(errors.size()) < targets && attempts < 8 * targets) {
    ++attempts;
    const Vec2 q = scenario.dataset->box().SamplePoint(rng);
    const int id = client.Top1(q);
    if (id < 0) continue;
    const std::optional<Vec2> pos = localizer.Locate(id, q);
    if (!pos.has_value()) continue;
    errors.push_back(Distance(*pos, scenario.dataset->tuple(id).pos));
  }
  return errors;
}

}  // namespace

int main() {
  using namespace lbsagg;

  ChinaOptions options;
  options.num_users = 6000;
  options.seed = 33;
  const ChinaScenario scenario = BuildChinaScenario(options);

  const int targets = 200;
  // Clean rank-only service vs WeChat-style obfuscation (50 m radius).
  const std::vector<double> clean = LocalizeMany(scenario, 0.0, targets);
  const std::vector<double> obfuscated = LocalizeMany(scenario, 0.05, targets);

  // The paper's bands, in meters (our plane is in km).
  const double bands_m[] = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 150};
  Table table({"accuracy band", "clean LNR (%)", "obfuscated LNR (%)"});
  double lo = 0.0;
  for (double hi : bands_m) {
    auto share = [&](const std::vector<double>& errors) {
      int n = 0;
      for (double e : errors) {
        const double m = e * 1000.0;
        if (m >= lo && m < hi) ++n;
      }
      return errors.empty() ? 0.0 : 100.0 * n / errors.size();
    };
    table.AddRow({Table::Num(lo, 0) + "-" + Table::Num(hi, 0) + " m",
                  Table::Num(share(clean), 1),
                  Table::Num(share(obfuscated), 1)});
    lo = hi;
  }
  auto beyond = [&](const std::vector<double>& errors) {
    int n = 0;
    for (double e : errors) {
      if (e * 1000.0 >= 150.0) ++n;
    }
    return errors.empty() ? 0.0 : 100.0 * n / errors.size();
  };
  table.AddRow({"> 150 m", Table::Num(beyond(clean), 1),
                Table::Num(beyond(obfuscated), 1)});

  std::printf("Figure 21 — localization accuracy over %zu / %zu localized "
              "targets (clean / obfuscated)\n\n",
              clean.size(), obfuscated.size());
  table.Print();
  bench::MaybeWriteRunReport("fig21_localization", {});
  return 0;
}
