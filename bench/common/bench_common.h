#ifndef LBSAGG_BENCH_COMMON_BENCH_COMMON_H_
#define LBSAGG_BENCH_COMMON_BENCH_COMMON_H_

// Shared driver for the paper-reproduction benchmarks (bench/fig*.cc,
// bench/table1_online.cc). Each benchmark binary prints the series of one
// figure/table of §6 of "Aggregate Estimations over Location Based
// Services" (PVLDB 8(10), 2015); this header holds the common experiment
// plumbing: standard scenarios, multi-run sweeps of the three estimators,
// and the query-cost-vs-relative-error tables the paper plots.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/lnr_agg.h"
#include "core/lr_agg.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "spatial/backend.h"
#include "transport/async_dispatcher.h"
#include "transport/metrics.h"
#include "transport/simulated_transport.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace bench {

// Standard benchmark scale. The paper ran against the USA portion of
// OpenStreetMap and the live services; we run laptop-scale synthetic
// equivalents with the same shape (see DESIGN.md).
struct BenchConfig {
  int num_pois = 6000;
  int runs = 15;          // the paper averages 25 runs per data point
  uint64_t budget = 15000;
  int k = 5;
  uint64_t seed_base = 42;

  // SpatialIndex implementation behind every simulated server the bench
  // builds. All backends answer bit-identically, so this only moves the
  // setup/query wall time — it lets any fig-style bench rerun its curves
  // over the learned index (`--index learned`) without a recompile.
  SpatialBackend index = SpatialBackend::kKdTree;
};

// Applies the standard bench command line to `config`: --index, --runs,
// --budget, --pois (each optional, defaults from the passed-in config).
// Returns false after printing usage/error when the arguments don't parse —
// the caller should `return 1`.
bool ApplyBenchFlags(int argc, const char* const* argv, BenchConfig* config);

// One estimator family to sweep.
struct EstimatorSpec {
  std::string name;
  // Builds and runs one estimator run to the budget; returns its trace.
  std::function<RunResult(uint64_t seed, uint64_t budget)> run;
};

// Runs `runs` independent repetitions of each estimator family and returns
// the per-family traces. Runs execute in parallel across worker threads
// (num_threads = 0 picks the hardware concurrency) — every run builds its
// own client, and the shared server/sampler are immutable after
// construction. Each (spec, seed) task is deterministic, so the traces are
// bit-identical for any thread count (sweep_determinism_test.cc pins this).
std::map<std::string, std::vector<RunResult>> SweepEstimators(
    const std::vector<EstimatorSpec>& specs, int runs, uint64_t budget,
    uint64_t seed_base, unsigned num_threads = 0);

// Prints the paper's figure format: rows = target relative error, columns =
// query cost needed by each family (linearly interpolated; ">budget" when a
// family never reaches the target).
void PrintCostVersusErrorTable(
    const std::string& title,
    const std::map<std::string, std::vector<RunResult>>& traces, double truth,
    const std::vector<double>& error_targets = {0.5, 0.4, 0.3, 0.2, 0.15,
                                                0.1});

// Prints mean relative error at evenly spaced query-cost checkpoints.
void PrintErrorVersusCostTable(
    const std::string& title,
    const std::map<std::string, std::vector<RunResult>>& traces, double truth,
    int checkpoints = 8);

// Convenience builders for the three estimator families over a fixed server.
// All pointers must outlive the returned spec.
EstimatorSpec MakeLrSpec(const std::string& name, LbsServer* server,
                         const QuerySampler* sampler, AggregateSpec aggregate,
                         int k, LrAggOptions options = {});
EstimatorSpec MakeLnrSpec(const std::string& name, LbsServer* server,
                          const QuerySampler* sampler, AggregateSpec aggregate,
                          int k, LnrAggOptions options = {});
EstimatorSpec MakeNnoSpec(const std::string& name, LbsServer* server,
                          AggregateSpec aggregate, int k,
                          NnoOptions options = {});

// Like MakeLrSpec / MakeNnoSpec, but every interface query crosses a fresh
// per-run SimulatedTransport configured by `topts` (its seed is mixed with
// the run seed, so repetitions see independent fault streams while the
// whole sweep stays reproducible). When `metrics_sink` is non-null each
// run's TransportMetrics are merged into it under an internal lock —
// SweepEstimators fans runs out across threads — giving the harness a
// sweep-level service-side picture to dump next to the error tables. The
// NNO variant additionally pipelines its Monte-Carlo membership probes
// through an AsyncDispatcher with `dispatcher_workers` workers (0 = no
// dispatcher, sequential batches).
EstimatorSpec MakeLrTransportSpec(const std::string& name, LbsServer* server,
                                  const QuerySampler* sampler,
                                  AggregateSpec aggregate, int k,
                                  SimulatedTransportOptions topts,
                                  LrAggOptions options = {},
                                  TransportMetrics* metrics_sink = nullptr);
EstimatorSpec MakeNnoTransportSpec(const std::string& name, LbsServer* server,
                                   AggregateSpec aggregate, int k,
                                   SimulatedTransportOptions topts,
                                   NnoOptions options = {},
                                   TransportMetrics* metrics_sink = nullptr,
                                   unsigned dispatcher_workers = 0);

// LNR benchmarks use aggregate-grade search precision (§4: the bias is
// O(ε); meter-scale edges would burn the budget on one sample).
LnrAggOptions DefaultLnrBenchOptions();

// Env-gated run-report emission (DESIGN.md §4.8): when LBSAGG_RUN_REPORT
// names a path, writes one RunReport JSON artifact there — per-family
// RunningStats over the runs' final estimates and query costs, a snapshot
// of the process-wide metric plane (the benchmark clients and estimators
// publish to obs::MetricsRegistry::Default()), and, when `transport` is
// non-null, the sweep's merged TransportMetrics as a "transport" section.
// Every bench/fig*/table*/ablation* target calls this after printing its
// tables; without the env var it is a no-op, so default benchmark runs are
// byte-identical to before.
void MaybeWriteRunReport(
    const std::string& bench_name,
    const std::map<std::string, std::vector<RunResult>>& traces,
    const TransportMetrics* transport = nullptr);

}  // namespace bench
}  // namespace lbsagg

#endif  // LBSAGG_BENCH_COMMON_BENCH_COMMON_H_
