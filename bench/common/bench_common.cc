#include "common/bench_common.h"

#include <cstdio>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "geometry/loc_key.h"  // SplitMix64
#include "obs/report.h"
#include "util/flags.h"
#include "util/table.h"

namespace lbsagg {
namespace bench {

bool ApplyBenchFlags(int argc, const char* const* argv, BenchConfig* config) {
  FlagParser flags;
  flags.AddString("index", SpatialBackendName(config->index),
                  std::string("spatial backend (") + SpatialBackendChoices() +
                      ")");
  flags.AddInt("runs", config->runs, "independent repetitions per series");
  flags.AddInt("budget", static_cast<int64_t>(config->budget),
               "query budget per run");
  flags.AddInt("pois", config->num_pois, "scenario size in POIs");
  if (!flags.Parse(argc, argv) || !flags.positional().empty()) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return false;
  }
  const std::optional<SpatialBackend> backend =
      ParseSpatialBackend(flags.GetString("index"));
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: unknown --index=%s (choices: %s)\n",
                 flags.GetString("index").c_str(), SpatialBackendChoices());
    return false;
  }
  config->index = *backend;
  config->runs = static_cast<int>(flags.GetInt("runs"));
  config->budget = static_cast<uint64_t>(flags.GetInt("budget"));
  config->num_pois = static_cast<int>(flags.GetInt("pois"));
  return true;
}

std::map<std::string, std::vector<RunResult>> SweepEstimators(
    const std::vector<EstimatorSpec>& specs, int runs, uint64_t budget,
    uint64_t seed_base, unsigned num_threads) {
  // Flatten (spec, run) into one task list and fan out over threads. Each
  // task owns its estimator and client; results land in preallocated slots,
  // so no synchronization beyond the atomic task counter is needed.
  std::map<std::string, std::vector<RunResult>> traces;
  struct Task {
    const EstimatorSpec* spec;
    RunResult* slot;
    uint64_t seed;
  };
  std::vector<Task> tasks;
  for (const EstimatorSpec& spec : specs) {
    std::vector<RunResult>& results = traces[spec.name];
    results.resize(runs);
    for (int r = 0; r < runs; ++r) {
      tasks.push_back({&spec, &results[r], seed_base + r});
    }
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      *tasks[i].slot = tasks[i].spec->run(tasks[i].seed, budget);
    }
  };
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned n_threads =
      std::min<unsigned>(num_threads, static_cast<unsigned>(tasks.size()));
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return traces;
}

void PrintCostVersusErrorTable(
    const std::string& title,
    const std::map<std::string, std::vector<RunResult>>& traces, double truth,
    const std::vector<double>& error_targets) {
  std::printf("%s\n", title.c_str());

  std::vector<std::string> headers = {"relative error"};
  std::vector<ErrorCurve> curves;
  std::vector<uint64_t> budgets;
  for (const auto& [name, runs] : traces) {
    headers.push_back(name);
    curves.push_back(ComputeErrorCurve(runs, truth));
    uint64_t max_cost = 0;
    for (const RunResult& r : runs) max_cost = std::max(max_cost, r.queries);
    budgets.push_back(max_cost);
  }

  Table table(headers);
  for (double target : error_targets) {
    std::vector<std::string> row = {Table::Num(target, 2)};
    for (size_t i = 0; i < curves.size(); ++i) {
      const double cost = QueryCostForError(curves[i], target);
      const bool reached =
          curves[i].mean_rel_error.back() <= target ||
          cost < static_cast<double>(curves[i].checkpoints.back());
      if (reached) {
        row.push_back(Table::Int(static_cast<long long>(cost)));
      } else {
        row.push_back("> " + Table::Int(static_cast<long long>(budgets[i])));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

void PrintErrorVersusCostTable(
    const std::string& title,
    const std::map<std::string, std::vector<RunResult>>& traces, double truth,
    int checkpoints) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> headers = {"queries"};
  std::vector<ErrorCurve> curves;
  for (const auto& [name, runs] : traces) {
    headers.push_back(name);
    curves.push_back(ComputeErrorCurve(runs, truth, checkpoints));
  }
  Table table(headers);
  for (int i = 0; i < checkpoints; ++i) {
    std::vector<std::string> row = {
        Table::Int(static_cast<long long>(curves[0].checkpoints[i]))};
    for (const ErrorCurve& curve : curves) {
      row.push_back(Table::Num(curve.mean_rel_error[i], 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

EstimatorSpec MakeLrSpec(const std::string& name, LbsServer* server,
                         const QuerySampler* sampler, AggregateSpec aggregate,
                         int k, LrAggOptions options) {
  return {name, [=](uint64_t seed, uint64_t budget) {
            LrClient client(server, {.k = k, .budget = budget});
            LrAggOptions opts = options;
            opts.seed = seed;
            LrAggEstimator est(&client, sampler, aggregate, opts);
            return RunWithBudget(MakeHandle(&est), budget);
          }};
}

EstimatorSpec MakeLnrSpec(const std::string& name, LbsServer* server,
                          const QuerySampler* sampler, AggregateSpec aggregate,
                          int k, LnrAggOptions options) {
  return {name, [=](uint64_t seed, uint64_t budget) {
            LnrClient client(server, {.k = k, .budget = budget});
            LnrAggOptions opts = options;
            opts.seed = seed;
            LnrAggEstimator est(&client, sampler, aggregate, opts);
            return RunWithBudget(MakeHandle(&est), budget);
          }};
}

EstimatorSpec MakeNnoSpec(const std::string& name, LbsServer* server,
                          AggregateSpec aggregate, int k, NnoOptions options) {
  return {name, [=](uint64_t seed, uint64_t budget) {
            LrClient client(server, {.k = k, .budget = budget});
            NnoOptions opts = options;
            opts.seed = seed;
            NnoEstimator est(&client, aggregate, opts);
            return RunWithBudget(MakeHandle(&est), budget);
          }};
}

namespace {

// Guards every metrics sink passed to the transport spec builders; sweep
// runs execute on SweepEstimators' worker threads.
std::mutex metrics_sink_mu;

void MergeMetrics(TransportMetrics* sink, const TransportMetrics& run) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_sink_mu);
  sink->Merge(run);
}

SimulatedTransportOptions PerRunOptions(SimulatedTransportOptions topts,
                                        uint64_t seed) {
  topts.seed = SplitMix64(topts.seed ^ SplitMix64(seed));
  return topts;
}

}  // namespace

EstimatorSpec MakeLrTransportSpec(const std::string& name, LbsServer* server,
                                  const QuerySampler* sampler,
                                  AggregateSpec aggregate, int k,
                                  SimulatedTransportOptions topts,
                                  LrAggOptions options,
                                  TransportMetrics* metrics_sink) {
  return {name, [=](uint64_t seed, uint64_t budget) {
            SimulatedTransport transport(server, PerRunOptions(topts, seed));
            LrClient client(server, {.k = k, .budget = budget}, &transport);
            LrAggOptions opts = options;
            opts.seed = seed;
            LrAggEstimator est(&client, sampler, aggregate, opts);
            RunResult result = RunWithBudget(MakeHandle(&est), budget);
            MergeMetrics(metrics_sink, transport.Metrics());
            return result;
          }};
}

EstimatorSpec MakeNnoTransportSpec(const std::string& name, LbsServer* server,
                                   AggregateSpec aggregate, int k,
                                   SimulatedTransportOptions topts,
                                   NnoOptions options,
                                   TransportMetrics* metrics_sink,
                                   unsigned dispatcher_workers) {
  return {name, [=](uint64_t seed, uint64_t budget) {
            SimulatedTransport transport(server, PerRunOptions(topts, seed));
            std::unique_ptr<AsyncDispatcher> dispatcher;
            if (dispatcher_workers > 0) {
              dispatcher = std::make_unique<AsyncDispatcher>(
                  &transport, DispatcherOptions{dispatcher_workers, 64});
            }
            LrClient client(server, {.k = k, .budget = budget}, &transport,
                            dispatcher.get());
            NnoOptions opts = options;
            opts.seed = seed;
            NnoEstimator est(&client, aggregate, opts);
            RunResult result = RunWithBudget(MakeHandle(&est), budget);
            MergeMetrics(metrics_sink, transport.Metrics());
            return result;
          }};
}

LnrAggOptions DefaultLnrBenchOptions() {
  LnrAggOptions options;
  options.cell.search.delta_fraction = 1e-6;
  options.cell.search.delta_prime_fraction = 1e-4;
  return options;
}

void MaybeWriteRunReport(
    const std::string& bench_name,
    const std::map<std::string, std::vector<RunResult>>& traces,
    const TransportMetrics* transport) {
  const char* path = std::getenv("LBSAGG_RUN_REPORT");
  if (path == nullptr || path[0] == '\0') return;

  obs::RunReport report;
  report.SetMeta("bench", bench_name);
  for (const auto& [name, runs] : traces) {
    RunningStats estimates;
    RunningStats queries;
    for (const RunResult& run : runs) {
      estimates.Add(run.final_estimate);
      queries.Add(static_cast<double>(run.queries));
    }
    report.AddStats(name + ".final_estimate", estimates);
    report.AddStats(name + ".queries", queries);
  }
  report.SetSnapshot(obs::MetricsRegistry::Default().Snapshot());
  if (transport != nullptr) {
    report.AddJsonSection("transport", transport->ToJson(2));
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write run report to %s\n", path);
    return;
  }
  out << report.ToJson() << "\n";
  std::fprintf(stderr, "run report written to %s\n", path);
}

}  // namespace bench
}  // namespace lbsagg
