#ifndef LBSAGG_BENCH_COMMON_BENCH_MAIN_H_
#define LBSAGG_BENCH_COMMON_BENCH_MAIN_H_

// Shared main() for the google-benchmark micro binaries (micro_*.cc).
//
// Identical to BENCHMARK_MAIN() except that it first records the *library
// under test*'s build type in the benchmark context, so every JSON dump
// (BENCH_*.json) carries "lbsagg_build_type": "release" | "debug" | ....
// The stock "library_build_type" context key is NOT that: google-benchmark
// fills it from its own compile (the system libbenchmark here is a debug
// build), so it says "debug" even when lbsagg is compiled -O3. Perf
// baselines must be read against lbsagg_build_type.

#include <benchmark/benchmark.h>

// Injected by bench/CMakeLists.txt from CMAKE_BUILD_TYPE (lowercased);
// "unspecified" when the build was configured without a build type.
#ifndef LBSAGG_BUILD_TYPE
#define LBSAGG_BUILD_TYPE "unspecified"
#endif

#define LBSAGG_BENCHMARK_MAIN()                                           \
  int main(int argc, char** argv) {                                       \
    benchmark::AddCustomContext("lbsagg_build_type", LBSAGG_BUILD_TYPE);  \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)

#endif  // LBSAGG_BENCH_COMMON_BENCH_MAIN_H_
