// Table 1: the paper's online demonstrations, run against the simulated
// services at the paper's query budgets. Unlike the paper we *can* print
// the ground truth next to every estimate.

#include <cstdio>

#include "common/bench_common.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  Table table({"LBS", "aggregate", "estimate", "truth", "budget"});

  // --- Google-Places-like LR service over the USA scenario. ---
  {
    UsaOptions uopts;
    uopts.num_pois = 30000;
    const UsaScenario usa = BuildUsaScenario(uopts);
    ServerOptions sopts;
    sopts.max_k = 60;
    sopts.max_radius = 500.0;
    LbsServer server(usa.dataset.get(), sopts);
    CensusSampler sampler(&usa.census);

    {
      const double truth =
          usa.dataset->GroundTruthCount(NameIs(usa.columns, "Starbucks"));
      LrClient client(&server, {.k = 10, .budget = 5000});
      client.SetPassThroughFilter(NameIs(usa.columns, "Starbucks"));
      LrAggOptions opts;
      opts.cell.monte_carlo = false;
      LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
      const RunResult run = RunWithBudget(MakeHandle(&est), 5000);
      table.AddRow({"Google-Places-like", "COUNT(Starbucks in US)",
                    Table::Num(run.final_estimate, 0), Table::Num(truth, 0),
                    "5000"});
    }
    {
      const AggregateSpec spec = AggregateSpec::CountWhere(
          And(ColumnEquals(usa.columns.category, "restaurant"),
              ColumnIsTrue(usa.columns.open_sunday)),
          "COUNT(restaurants open Sundays)");
      const double truth = usa.dataset->GroundTruthCount([&](const Tuple& t) {
        return std::get<std::string>(t.values[usa.columns.category]) ==
                   "restaurant" &&
               std::get<bool>(t.values[usa.columns.open_sunday]);
      });
      LrClient client(&server, {.k = 10, .budget = 5000});
      LrAggOptions opts;
      opts.cell.monte_carlo = false;
      LrAggEstimator est(&client, &sampler, spec, opts);
      const RunResult run = RunWithBudget(MakeHandle(&est), 5000);
      table.AddRow({"Google-Places-like", "COUNT(rest. open Sundays)",
                    Table::Num(run.final_estimate, 0), Table::Num(truth, 0),
                    "5000"});
    }
  }

  // --- WeChat-like and Weibo-like LNR services. ---
  for (const auto& [label, male_fraction, seed] :
       {std::tuple{"WeChat-like", 0.671, uint64_t{101}},
        std::tuple{"Weibo-like", 0.504, uint64_t{202}}}) {
    ChinaOptions copts;
    copts.num_users = 15000;
    copts.male_fraction = male_fraction;
    copts.seed = seed;
    const ChinaScenario china = BuildChinaScenario(copts);
    LbsServer server(china.dataset.get(), {.max_k = 10});
    CensusSampler sampler(&china.census);
    LnrAggOptions opts = DefaultLnrBenchOptions();

    double count_estimate = 0.0;
    double num = 0.0, den = 0.0;
    const int runs = 10;
    for (int r = 0; r < runs; ++r) {
      LnrClient count_client(&server, {.k = 10, .budget = 10000});
      LnrAggOptions o = opts;
      o.seed = 1000 + r;
      LnrAggEstimator count_est(&count_client, &sampler,
                                AggregateSpec::Count(), o);
      count_estimate +=
          RunWithBudget(MakeHandle(&count_est), 10000).final_estimate / runs;

      LnrClient ratio_client(&server, {.k = 10, .budget = 10000});
      LnrAggEstimator ratio_est(
          &ratio_client, &sampler,
          AggregateSpec::Avg(china.columns.male_indicator, "AVG(male)"), o);
      RunWithBudget(MakeHandle(&ratio_est), 10000);
      num += ratio_est.NumeratorMean();
      den += ratio_est.DenominatorMean();
    }
    const double share = den > 0 ? num / den : 0.0;
    table.AddRow({label, "COUNT(users)", Table::Num(count_estimate, 0),
                  Table::Num(china.dataset->GroundTruthCount(), 0),
                  "10x10000"});
    table.AddRow({label, "gender ratio (M:F)",
                  Table::Num(100 * share, 1) + ":" +
                      Table::Num(100 * (1 - share), 1),
                  Table::Num(100 * male_fraction, 1) + ":" +
                      Table::Num(100 * (1 - male_fraction), 1),
                  "10x10000"});
  }

  std::printf("Table 1 — online-demonstration aggregates over the simulated "
              "services\n\n");
  table.Print();
  MaybeWriteRunReport("table1_online", {});
  return 0;
}
