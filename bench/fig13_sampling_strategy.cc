// Figure 13: impact of the sampling strategy (§5.2). LR-LBS-AGG and
// LNR-LBS-AGG with uniform query sampling versus census-weighted sampling
// ("-US" variants in the paper, after the US Census source). Expected
// shape: the weighted variants reach every error level with a large
// fraction fewer queries, because weighted sampling flattens the enormous
// cell-size skew of Figure 11.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 20000;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  UniformSampler uniform(usa.dataset->box());
  CensusSampler weighted(&usa.census);

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "school"), "COUNT(schools)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));

  const auto traces = SweepEstimators(
      {
          MakeLrSpec("LR-LBS-AGG", &server, &uniform, spec, config.k),
          MakeLrSpec("LR-LBS-AGG-US", &server, &weighted, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &uniform, spec, config.k,
                      DefaultLnrBenchOptions()),
          MakeLnrSpec("LNR-LBS-AGG-US", &server, &weighted, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  PrintCostVersusErrorTable(
      "Figure 13 — query cost vs relative error, COUNT(schools): uniform vs "
      "census-weighted sampling",
      traces, truth);
  MaybeWriteRunReport("fig13_sampling_strategy", traces);
  return 0;
}
