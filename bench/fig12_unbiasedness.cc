// Figure 12: unbiasedness / convergence traces. The running estimate of
// COUNT(restaurants in US) is plotted against query cost for the three
// algorithms. Expected shape: LR-LBS-AGG and LNR-LBS-AGG converge quickly
// to the ground truth; LR-LBS-NNO oscillates with far higher variance.

#include <cstdio>

#include "common/bench_common.h"
#include "util/table.h"

int main() {
  using namespace lbsagg;
  using namespace lbsagg::bench;

  BenchConfig config;
  config.budget = 25000;
  config.runs = 10;

  UsaOptions uopts;
  uopts.num_pois = config.num_pois;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = config.k});
  CensusSampler sampler(&usa.census);

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "restaurant"));

  const auto traces = SweepEstimators(
      {
          MakeNnoSpec("LR-LBS-NNO", &server, spec, config.k),
          MakeLrSpec("LR-LBS-AGG", &server, &sampler, spec, config.k),
          MakeLnrSpec("LNR-LBS-AGG", &server, &sampler, spec, config.k,
                      DefaultLnrBenchOptions()),
      },
      config.runs, config.budget, config.seed_base);

  std::printf("Figure 12 — estimate trace vs query cost, "
              "COUNT(restaurants), ground truth = %.0f (mean of %d runs)\n\n",
              truth, config.runs);

  Table table({"queries", "LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG",
               "ground truth"});
  const int checkpoints = 10;
  for (int i = 1; i <= checkpoints; ++i) {
    const uint64_t cost = config.budget * i / checkpoints;
    std::vector<std::string> row = {
        Table::Int(static_cast<long long>(cost))};
    for (const char* name : {"LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG"}) {
      double mean = 0.0;
      const auto& runs = traces.at(name);
      for (const RunResult& run : runs) {
        mean += EstimateAtCost(run.trace, cost) / runs.size();
      }
      row.push_back(Table::Num(mean, 0));
    }
    row.push_back(Table::Num(truth, 0));
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\n");
  PrintErrorVersusCostTable(
      "Mean relative error at the same checkpoints:", traces, truth);

  std::printf("Final-estimate spread across runs (min..max):\n");
  for (const auto& [name, runs] : traces) {
    double lo = 1e300, hi = -1e300;
    for (const RunResult& run : runs) {
      lo = std::min(lo, run.final_estimate);
      hi = std::max(hi, run.final_estimate);
    }
    std::printf("  %-12s %.0f .. %.0f\n", name.c_str(), lo, hi);
  }
  MaybeWriteRunReport("fig12_unbiasedness", traces);
  return 0;
}
