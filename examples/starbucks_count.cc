// The paper's flagship online experiment (Table 1): estimating the COUNT of
// Starbucks stores in the US through the Google Places interface, with the
// selection condition passed through to the service — plus the post-processed
// variant (restaurants open on Sundays) that the service cannot filter.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/table.h"
#include "workload/scenarios.h"

int main() {
  using namespace lbsagg;

  UsaOptions options;
  options.num_pois = 30000;
  const UsaScenario usa = BuildUsaScenario(options);

  // Google-Places-like service: k up to 60, 50 km coverage radius.
  ServerOptions sopts;
  sopts.max_k = 60;
  sopts.max_radius = 500.0;  // generous radius in km-scaled plane
  LbsServer server(usa.dataset.get(), sopts);

  CensusSampler sampler(&usa.census);
  Table table({"aggregate", "estimate", "truth", "rel.err", "queries"});

  // --- Pass-through condition: NAME = 'Starbucks' appended to each query.
  {
    const double truth =
        usa.dataset->GroundTruthCount(NameIs(usa.columns, "Starbucks"));
    LrClient client(&server, {.k = 10, .budget = 5000});
    client.SetPassThroughFilter(NameIs(usa.columns, "Starbucks"));
    LrAggOptions opts;
    opts.cell.monte_carlo = false;  // exact cells under the coverage radius
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    const RunResult run = RunWithBudget(MakeHandle(&est), client.budget());
    table.AddRow({"COUNT(Starbucks in US)", Table::Num(run.final_estimate, 0),
                  Table::Num(truth, 0),
                  Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                             1) + "%",
                  Table::Int(static_cast<long long>(run.queries))});
  }

  // --- Post-processed condition: open_sunday cannot be passed through.
  {
    const AggregateSpec spec = AggregateSpec::CountWhere(
        And(ColumnEquals(usa.columns.category, "restaurant"),
            ColumnIsTrue(usa.columns.open_sunday)),
        "COUNT(restaurants open Sundays)");
    const double truth = usa.dataset->GroundTruthCount([&](const Tuple& t) {
      return std::get<std::string>(t.values[usa.columns.category]) ==
                 "restaurant" &&
             std::get<bool>(t.values[usa.columns.open_sunday]);
    });
    LrClient client(&server, {.k = 10, .budget = 5000});
    LrAggOptions opts;
    opts.cell.monte_carlo = false;
    LrAggEstimator est(&client, &sampler, spec, opts);
    const RunResult run = RunWithBudget(MakeHandle(&est), client.budget());
    table.AddRow({"COUNT(restaurants open Sun)",
                  Table::Num(run.final_estimate, 0), Table::Num(truth, 0),
                  Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                             1) + "%",
                  Table::Int(static_cast<long long>(run.queries))});
  }

  std::printf("Selection-condition estimation over a simulated Google "
              "Places (LR-LBS), budget 5000 queries each:\n\n");
  table.Print();
  return 0;
}
