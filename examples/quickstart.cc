// Quickstart: estimate the COUNT of a hidden spatial database by querying
// nothing but its restricted kNN interface.
//
// The example builds a synthetic "USA" POI database, stands up a simulated
// location-returned LBS in front of it, and runs Algorithm LR-LBS-AGG until
// a fixed query budget is exhausted — then compares against the ground
// truth, which a real client would not have.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "workload/scenarios.h"

int main() {
  using namespace lbsagg;

  // 1. A hidden database: 20,000 POIs clustered into cities.
  UsaOptions options;
  options.num_pois = 20000;
  const UsaScenario usa = BuildUsaScenario(options);

  // 2. The service: a kNN interface returning at most 10 tuples per query,
  //    with locations (LR-LBS, like Google Maps).
  LbsServer server(usa.dataset.get(), {.max_k = 10});

  // 3. The restricted client — the ONLY access path the estimator gets.
  //    10,000 queries: Google Maps' default daily rate limit (§2.1).
  LrClient client(&server, {.k = 5, .budget = 10000});

  // 4. Query locations weighted by census population density (§5.2).
  CensusSampler sampler(&usa.census);

  // 5. Estimate COUNT(*) with Algorithm LR-LBS-AGG.
  LrAggEstimator estimator(&client, &sampler, AggregateSpec::Count(), {});
  const RunResult run = RunWithBudget(MakeHandle(&estimator), client.budget());

  const double truth = usa.dataset->GroundTruthCount();
  std::printf("LR-LBS-AGG estimate of COUNT(*)\n");
  std::printf("  queries spent : %llu\n",
              static_cast<unsigned long long>(run.queries));
  std::printf("  samples       : %zu\n", estimator.rounds());
  std::printf("  estimate      : %.0f  (95%% CI ±%.0f)\n", run.final_estimate,
              estimator.ConfidenceHalfWidth());
  std::printf("  ground truth  : %.0f\n", truth);
  std::printf("  relative error: %.1f%%\n",
              100.0 * RelativeError(run.final_estimate, truth));
  return 0;
}
