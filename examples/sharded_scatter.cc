// Sharded scatter-gather: the hidden database as N regional shards behind
// one logical kNN endpoint, with one shard running hot.
//
// The example stands up the same USA scenario three ways — a monolithic
// server, a clean 8-shard stack, and an 8-shard stack where shard 5 drops
// 40% of attempts — and shows the two contracts DESIGN.md §4.11 argues:
// the merged top-k is bit-identical to the monolithic answer whenever
// every lane delivers (retries included), and a lane that exhausts its
// retries surfaces as a *typed* failure instead of a silently short page.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "lbs/sharded_server.h"
#include "transport/sharded_transport.h"
#include "workload/scenarios.h"

int main() {
  using namespace lbsagg;

  UsaOptions options;
  options.num_pois = 20000;
  const UsaScenario usa = BuildUsaScenario(options);
  const int k = 5;

  // The monolithic reference.
  LbsServer mono(usa.dataset.get(), {.max_k = 10});

  // The sharded deployment: 8 Z-order shards, indexes built in parallel.
  ShardedLbsServer sharded(usa.dataset.get(),
                           {.num_shards = 8, .build_threads = 8,
                            .server = {.max_k = 10}});

  // Metadata-only server for the client side (brute backend: O(n) setup,
  // never searched — all kNN goes over the wire).
  LbsServer meta(usa.dataset.get(),
                 {.max_k = 10, .index_backend = SpatialBackend::kBruteForce});

  ShardedTransportOptions topts;
  topts.rate_limit = {.capacity = 16.0, .refill_per_sec = 100.0};  // per lane
  topts.shard_faults.resize(8);
  topts.shard_faults[5].transient_error_rate = 0.4;  // one hot shard
  topts.retry.max_attempts = 8;
  topts.seed = 0xf1a;
  ShardedTransport transport(&sharded, topts);

  // Same probes through both stacks: every delivered sharded reply must
  // equal the monolithic page bit for bit, retried lanes included.
  Rng rng(7);
  int compared = 0, identical = 0;
  for (int i = 0; i < 200; ++i) {
    const Vec2 q = usa.dataset->box().SamplePoint(rng);
    const TransportPlan plan = transport.Prepare(q, k);
    const TransportReply reply =
        transport.Fulfill(plan, q, k, TupleFilter{});
    if (!Delivered(reply.outcome)) continue;  // typed, never silent
    const std::vector<ServerHit> truth = mono.Query(q, k);
    ++compared;
    bool same = truth.size() == reply.hits.size();
    for (size_t j = 0; same && j < truth.size(); ++j) {
      same = truth[j].tuple_id == reply.hits[j].tuple_id &&
             truth[j].distance == reply.hits[j].distance;
    }
    identical += same;
  }
  const TransportMetrics hot = transport.ShardMetrics(5);
  std::printf("scatter-gather vs monolithic (shard 5 hot)\n");
  std::printf("  delivered     : %d/200\n", compared);
  std::printf("  bit-identical : %d/%d\n", identical, compared);
  std::printf("  hot-lane retries: %llu (other lanes: %llu)\n",
              static_cast<unsigned long long>(hot.retries),
              static_cast<unsigned long long>(
                  transport.ShardMetrics(0).retries));

  // The estimator neither knows nor cares about the topology: same trace
  // over the sharded wire as over the monolithic stack.
  CensusSampler sampler(&usa.census);
  LrClient client(&meta, {.k = k, .budget = 6000}, &transport);
  LrAggEstimator estimator(&client, &sampler, AggregateSpec::Count(),
                           {.seed = 42});
  const RunResult run = RunWithBudget(MakeHandle(&estimator), 6000);
  const double truth = usa.dataset->GroundTruthCount();
  std::printf("LR-LBS-AGG over the sharded wire\n");
  std::printf("  estimate      : %.0f  (truth %.0f, error %.1f%%)\n",
              run.final_estimate, truth,
              100.0 * RelativeError(run.final_estimate, truth));
  std::printf("  queries spent : %llu (critical-path attempts: %llu)\n",
              static_cast<unsigned long long>(run.queries),
              static_cast<unsigned long long>(transport.Metrics().attempts));
  return 0;
}
