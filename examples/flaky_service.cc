// Estimating COUNT(restaurants) through a *flaky* service: the same
// LR-LBS-AGG estimator, but every query crosses a SimulatedTransport with
// lognormal latency, a token-bucket rate limit, transient errors, timeouts,
// truncated result pages, and a capped-backoff retry policy. Independent
// Monte-Carlo probes are pipelined through an AsyncDispatcher worker pool —
// with no effect on the result: outcomes are deterministic for a fixed seed
// regardless of worker count (see DESIGN.md "Transport & fault model").
//
// Prints the clean-wire baseline next to the flaky run, then the
// transport's metrics as JSON.

#include <cstdio>

#include "core/aggregate.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "transport/async_dispatcher.h"
#include "transport/simulated_transport.h"
#include "util/table.h"
#include "workload/scenarios.h"

int main() {
  using namespace lbsagg;

  UsaOptions options;
  options.num_pois = 8000;
  const UsaScenario usa = BuildUsaScenario(options);
  LbsServer server(usa.dataset.get(), {.max_k = 10});

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");
  const double truth = usa.dataset->GroundTruthCount([&](const Tuple& t) {
    return std::get<std::string>(t.values[usa.columns.category]) ==
           "restaurant";
  });

  constexpr uint64_t kBudget = 6000;
  Table table({"wire", "estimate", "truth", "rel.err", "attempts", "rounds"});

  // --- Baseline: ideal in-process wire.
  {
    LrClient client(&server, {.k = 5, .budget = kBudget});
    NnoEstimator est(&client, spec, {.seed = 7});
    const RunResult run = RunWithBudget(MakeHandle(&est), kBudget);
    table.AddRow({"direct", Table::Num(run.final_estimate, 0),
                  Table::Num(truth, 0),
                  Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                             1) + "%",
                  Table::Int(static_cast<long long>(run.queries)),
                  Table::Int(static_cast<long long>(run.trace.size()))});
  }

  // --- Flaky wire: lossy, rate-limited, retrying.
  SimulatedTransportOptions topts;
  topts.latency.kind = LatencyOptions::Kind::kLognormal;
  topts.latency.lognormal_median_ms = 80.0;
  topts.rate_limit = {.capacity = 20.0, .refill_per_sec = 5.0};
  topts.faults.transient_error_rate = 0.08;
  topts.faults.timeout_rate = 0.02;
  topts.faults.truncate_rate = 0.05;
  topts.retry.max_attempts = 4;
  topts.seed = 0xf1a;

  SimulatedTransport transport(&server, topts);
  AsyncDispatcher dispatcher(&transport, {.num_workers = 4});
  LrClient client(&server, {.k = 5, .budget = kBudget}, &transport,
                  &dispatcher);
  NnoEstimator est(&client, spec, {.seed = 7});
  const RunResult run = RunWithBudget(MakeHandle(&est), kBudget);
  table.AddRow({"flaky", Table::Num(run.final_estimate, 0),
                Table::Num(truth, 0),
                Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                           1) + "%",
                Table::Int(static_cast<long long>(run.queries)),
                Table::Int(static_cast<long long>(run.trace.size()))});

  std::printf("COUNT(restaurants) via the LBS-NNO baseline (biased by "
              "design — the paper's\nstrawman), budget %llu interface "
              "attempts. The flaky wire retries transient\nfailures, so the "
              "same budget buys fewer sampling rounds:\n\n",
              static_cast<unsigned long long>(kBudget));
  table.Print();

  const TransportMetrics metrics = transport.Metrics();
  std::printf("\nSimulated %.1f s of service time at 4 dispatcher workers "
              "(deterministic for\nany worker count under a fixed seed).\n",
              transport.VirtualNowMs() / 1000.0);
  std::printf("\nTransport metrics:\n%s\n", metrics.ToJson(2).c_str());
  return 0;
}
