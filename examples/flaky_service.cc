// Estimating COUNT(restaurants) through a *flaky* service: the same
// LR-LBS-AGG estimator, but every query crosses a SimulatedTransport with
// lognormal latency, a token-bucket rate limit, transient errors, timeouts,
// truncated result pages, and a capped-backoff retry policy. Independent
// Monte-Carlo probes are pipelined through an AsyncDispatcher worker pool —
// with no effect on the result: outcomes are deterministic for a fixed seed
// regardless of worker count (see DESIGN.md "Transport & fault model").
//
// Prints the clean-wire baseline next to the flaky run, then the
// transport's metrics as JSON. This is also the reference wiring of the
// observability plane (DESIGN.md §4.8):
//
//   --trace=out.json   write the flaky run's span tree (estimator rounds,
//                      cell computations, client queries, transport
//                      requests/attempts) as Chrome trace_event JSON on the
//                      transport's virtual-time axis; open it in Perfetto
//                      (ui.perfetto.dev) or chrome://tracing.
//   --report=out.json  write the merged RunReport: run meta + RunningStats,
//                      every layer's counters/gauges/histograms, and the
//                      TransportMetrics JSON as a "transport" section.
//                      Validated by tools/validate_report.py.

#include <cstdio>
#include <fstream>

#include "core/aggregate.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "transport/async_dispatcher.h"
#include "transport/metrics.h"
#include "transport/simulated_transport.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace {

bool WriteFileOrComplain(const std::string& path, const std::string& body,
                         const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  out << body << "\n";
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsagg;

  FlagParser flags;
  flags.AddString("trace", "",
                  "write the flaky run's Chrome trace_event JSON here");
  flags.AddString("report", "", "write the merged RunReport JSON here");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }
  const std::string trace_path = flags.GetString("trace");
  const std::string report_path = flags.GetString("report");

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();

  UsaOptions options;
  options.num_pois = 8000;
  const UsaScenario usa = BuildUsaScenario(options);
  // Opt the kd-tree into the metric plane so the report covers the spatial
  // layer too (spatial.kdtree.* is opt-in, see ServerOptions).
  LbsServer server(usa.dataset.get(),
                   {.max_k = 10, .stats_registry = &registry});

  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");
  const double truth = usa.dataset->GroundTruthCount([&](const Tuple& t) {
    return std::get<std::string>(t.values[usa.columns.category]) ==
           "restaurant";
  });

  constexpr uint64_t kBudget = 6000;
  Table table({"wire", "estimate", "truth", "rel.err", "attempts", "rounds"});

  // --- Baseline: ideal in-process wire.
  {
    LrClient client(&server, {.k = 5, .budget = kBudget});
    NnoEstimator est(&client, spec, {.seed = 7});
    const RunResult run = RunWithBudget(MakeHandle(&est), kBudget);
    table.AddRow({"direct", Table::Num(run.final_estimate, 0),
                  Table::Num(truth, 0),
                  Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                             1) + "%",
                  Table::Int(static_cast<long long>(run.queries)),
                  Table::Int(static_cast<long long>(run.trace.size()))});
  }

  // --- Flaky wire: lossy, rate-limited, retrying.
  SimulatedTransportOptions topts;
  topts.latency.kind = LatencyOptions::Kind::kLognormal;
  topts.latency.lognormal_median_ms = 80.0;
  topts.rate_limit = {.capacity = 20.0, .refill_per_sec = 5.0};
  topts.faults.transient_error_rate = 0.08;
  topts.faults.timeout_rate = 0.02;
  topts.faults.truncate_rate = 0.05;
  topts.retry.max_attempts = 4;
  topts.seed = 0xf1a;

  // All spans share the transport's deterministic virtual clock, so the
  // estimator/client/transport timelines line up in Perfetto. The transport
  // is constructed after the tracer (its options carry the tracer pointer),
  // hence the indirection through a late-bound pointer.
  SimulatedTransport* transport_ptr = nullptr;
  obs::FunctionTraceClock virtual_clock([&transport_ptr] {
    return transport_ptr == nullptr ? 0.0
                                    : transport_ptr->VirtualNowMs() * 1000.0;
  });
  obs::Tracer tracer(&virtual_clock);
  obs::Tracer* trace_sink = trace_path.empty() ? nullptr : &tracer;
  topts.tracer = trace_sink;

  SimulatedTransport transport(&server, topts);
  transport_ptr = &transport;
  AsyncDispatcher dispatcher(&transport, {.num_workers = 4});
  LrClient client(&server,
                  {.k = 5, .budget = kBudget, .tracer = trace_sink},
                  &transport, &dispatcher);
  NnoEstimator est(&client, spec, {.seed = 7, .tracer = trace_sink});
  const RunResult run = RunWithBudget(MakeHandle(&est), kBudget);
  table.AddRow({"flaky", Table::Num(run.final_estimate, 0),
                Table::Num(truth, 0),
                Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                           1) + "%",
                Table::Int(static_cast<long long>(run.queries)),
                Table::Int(static_cast<long long>(run.trace.size()))});

  std::printf("COUNT(restaurants) via the LBS-NNO baseline (biased by "
              "design — the paper's\nstrawman), budget %llu interface "
              "attempts. The flaky wire retries transient\nfailures, so the "
              "same budget buys fewer sampling rounds:\n\n",
              static_cast<unsigned long long>(kBudget));
  table.Print();

  const TransportMetrics metrics = transport.Metrics();
  std::printf("\nSimulated %.1f s of service time at 4 dispatcher workers "
              "(deterministic for\nany worker count under a fixed seed).\n",
              transport.VirtualNowMs() / 1000.0);
  std::printf("\nTransport metrics:\n%s\n", metrics.ToJson(2).c_str());

  // Bridge the transport's own accounting onto the metric plane, then
  // assemble the one-artifact view of the flaky run.
  PublishTransportMetrics(metrics, &registry);
  obs::RunReport report = BuildRunReport("nno", run, &registry);
  report.SetMeta("example", "flaky_service");
  report.SetMetaNum("budget", static_cast<double>(kBudget));
  report.SetMetaNum("truth", truth);
  report.SetMetaNum("virtual_time_ms", transport.VirtualNowMs());
  report.AddJsonSection("transport", metrics.ToJson(2));

  int exit_code = 0;
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, tracer.ToChromeTraceJson(), "trace"))
      exit_code = 1;
  }
  if (!report_path.empty()) {
    if (!WriteFileOrComplain(report_path, report.ToJson(), "run report"))
      exit_code = 1;
  }
  return exit_code;
}
