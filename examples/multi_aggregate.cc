// Answering many aggregates from ONE query budget: the estimation engine
// (DESIGN.md §4.9) resolves each sampled tuple's appearance probability
// once, logs it as evidence, and lets any number of AggregateQuery
// consumers fold the same stream — COUNT, SUM and a *conditioned* AVG here,
// all for the price of a single LR-LBS-AGG run. A fourth consumer attaches
// mid-run and replays the log, ending bit-identical to one registered
// up front.
//
//   --trace=out.json   write the run's span tree (engine rounds, evidence
//                      commits, estimator cell computations, client
//                      queries) as Chrome trace_event JSON.
//   --report=out.json  write the RunReport: run meta + RunningStats, every
//                      layer's counters (engine.* included), and the
//                      engine's diagnostics as an "engine" section.
//                      Validated by tools/validate_report.py.

#include <cstdio>
#include <fstream>
#include <optional>

#include "core/aggregate.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "engine/engine.h"
#include "engine/lr_resolver.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace {

bool WriteFileOrComplain(const std::string& path, const std::string& body,
                         const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  out << body << "\n";
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsagg;

  FlagParser flags;
  flags.AddString("trace", "", "write the run's Chrome trace_event JSON here");
  flags.AddString("report", "", "write the RunReport JSON here");
  flags.AddString("index", "kdtree",
                  "spatial index backend serving the simulated LBS: kdtree | "
                  "grid | brute | learned (estimates are bit-identical)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }
  const std::string trace_path = flags.GetString("trace");
  const std::string report_path = flags.GetString("report");
  const std::optional<SpatialBackend> backend =
      ParseSpatialBackend(flags.GetString("index"));
  if (!backend.has_value()) {
    std::fprintf(stderr, "unknown --index=%s (choices: %s)\n",
                 flags.GetString("index").c_str(), SpatialBackendChoices());
    return 1;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Tracer tracer;
  obs::Tracer* trace_sink = trace_path.empty() ? nullptr : &tracer;

  UsaOptions options;
  options.num_pois = 8000;
  const UsaScenario usa = BuildUsaScenario(options);
  LbsServer server(usa.dataset.get(), {.max_k = 10,
                                       .index_backend = *backend,
                                       .stats_registry = &registry});
  UniformSampler sampler(usa.dataset->box());

  const int rating = usa.columns.rating;
  const ReturnedTuplePredicate is_restaurant =
      ColumnEquals(usa.columns.category, "restaurant");
  const TupleFilter truth_restaurant = [&](const Tuple& t) {
    return std::get<std::string>(t.values[usa.columns.category]) ==
           "restaurant";
  };
  const auto rating_of = [rating](const Tuple& t) {
    return std::get<double>(t.values[rating]);
  };
  const double truth_count = usa.dataset->GroundTruthCount(truth_restaurant);
  const double truth_sum = usa.dataset->GroundTruthSum(nullptr, rating_of);
  const double truth_avg =
      usa.dataset->GroundTruthSum(truth_restaurant, rating_of) / truth_count;

  // One client, one resolver, one budget — N answers.
  constexpr uint64_t kBudget = 6000;
  LrClient client(&server, {.k = 5, .budget = kBudget, .tracer = trace_sink});
  engine::LrCellResolver resolver(
      &client, &sampler, {.seed = 7, .tracer = trace_sink});
  engine::EstimationEngine eng(&resolver,
                               engine::EngineOptions{.tracer = trace_sink});
  auto* count = eng.AddAggregate(
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants)"));
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  auto* avg = eng.AddAggregate(
      AggregateSpec::AvgWhere(rating, is_restaurant, "AVG(rating|rest)"));

  // Spend half the budget, then attach a latecomer: it replays the evidence
  // log and its trace covers the whole run as if registered up front.
  while (eng.queries_used() < kBudget / 2) eng.Step();
  auto* late_count = eng.AddAggregate(
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants), late"));
  while (eng.queries_used() < kBudget) eng.Step();

  Table table({"aggregate", "estimate", "truth", "rel.err"});
  const auto add_row = [&](const engine::AggregateQuery* q, double truth) {
    table.AddRow({q->spec().name, Table::Num(q->Estimate(), 1),
                  Table::Num(truth, 1),
                  Table::Num(100.0 * RelativeError(q->Estimate(), truth), 1) +
                      "%"});
  };
  add_row(count, truth_count);
  add_row(sum, truth_sum);
  add_row(avg, truth_avg);
  add_row(late_count, truth_count);

  std::printf("Three aggregates (plus one registered mid-run) answered from "
              "ONE budget of %llu\ninterface queries — %zu evidence rounds, "
              "%zu observations, shared by all:\n\n",
              static_cast<unsigned long long>(kBudget),
              eng.evidence().num_rounds(), eng.evidence().num_observations());
  table.Print();

  std::printf("\nAVG folds the same evidence as the matching SUM and COUNT "
              "streams, so\nAVG = num/den holds exactly: %.12g = %.12g / "
              "%.12g\n",
              avg->Estimate(), avg->NumeratorMean(), avg->DenominatorMean());
  std::printf("late COUNT == up-front COUNT (replayed evidence): %.12g vs "
              "%.12g\n",
              late_count->Estimate(), count->Estimate());

  // The one-artifact view: run meta, engine.* counters, and the engine's
  // layered diagnostics as the "engine" section.
  RunResult run;
  run.trace = count->trace();
  run.final_estimate = count->Estimate();
  run.queries = eng.queries_used();
  obs::RunReport report = BuildRunReport("engine.lr", run, &registry);
  report.SetMeta("example", "multi_aggregate");
  report.SetMetaNum("budget", static_cast<double>(kBudget));
  report.SetMetaNum("aggregates", static_cast<double>(eng.num_aggregates()));
  report.SetMetaNum("truth", truth_count);
  report.AddJsonSection("engine", eng.diagnostics_json());

  int exit_code = 0;
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, tracer.ToChromeTraceJson(), "trace"))
      exit_code = 1;
  }
  if (!report_path.empty()) {
    if (!WriteFileOrComplain(report_path, report.ToJson(), "run report"))
      exit_code = 1;
  }
  return exit_code;
}
