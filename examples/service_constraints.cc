// §5.3 special interface constraints, end to end: a service with a maximum
// coverage radius (Google Maps: 50 km; Weibo: 11 km), one with
// "prominence" ranking (Google Places' default), and a distance-only
// service (Skout/Momo) estimated through transparent trilateration — all
// with the same LR-LBS-AGG estimator.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace {

lbsagg::RunResult Estimate(lbsagg::LrClient& client,
                           const lbsagg::QuerySampler& sampler,
                           uint64_t budget) {
  using namespace lbsagg;
  LrAggOptions opts;
  opts.adaptive_h = false;
  opts.fixed_h = 1;
  opts.cell.monte_carlo = false;  // exact cells under coverage limits
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  return RunWithBudget(MakeHandle(&est), budget);
}

}  // namespace

int main() {
  using namespace lbsagg;

  UsaOptions uopts;
  uopts.num_pois = 8000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  CensusSampler sampler(&usa.census);
  const double truth = usa.dataset->GroundTruthCount();
  const uint64_t budget = 12000;

  Table table({"service constraint", "estimate", "truth", "rel.err",
               "queries"});
  auto add_row = [&](const char* label, const RunResult& run) {
    table.AddRow({label, Table::Num(run.final_estimate, 0),
                  Table::Num(truth, 0),
                  Table::Num(100.0 * RelativeError(run.final_estimate, truth),
                             1) + "%",
                  Table::Int(static_cast<long long>(run.queries))});
  };

  {
    // Plain distance-ranked service: the reference.
    LbsServer server(usa.dataset.get(), {.max_k = 5});
    LrClient client(&server, {.k = 5, .budget = budget});
    add_row("none (reference)", Estimate(client, sampler, budget));
  }
  {
    // Maximum coverage radius: distant queries return nothing; cells are
    // clipped by the d_max disc (empty answers contribute zero).
    ServerOptions sopts;
    sopts.max_k = 5;
    sopts.max_radius = 150.0;
    LbsServer server(usa.dataset.get(), sopts);
    LrClient client(&server, {.k = 5, .budget = budget});
    add_row("coverage radius 150 km", Estimate(client, sampler, budget));
  }
  {
    // Prominence ranking: popular POIs outrank nearer ones; the estimator
    // re-sorts the returned locations by distance (§5.3).
    ServerOptions sopts;
    sopts.max_k = 5;
    sopts.ranking = RankingMode::kProminence;
    sopts.prominence_column = "popularity";
    sopts.prominence_weight = 40.0;
    sopts.max_radius = 600.0;
    LbsServer server(usa.dataset.get(), sopts);
    LrClient client(&server, {.k = 5, .budget = budget});
    add_row("prominence ranking", Estimate(client, sampler, budget));
  }
  {
    // Distance-only interface: locations recovered by trilateration, three
    // extra queries per previously unseen tuple (§2.1).
    LbsServer server(usa.dataset.get(), {.max_k = 5});
    TrilaterationClient client(&server, {.k = 5, .budget = budget});
    add_row("distances only (trilaterated)",
            Estimate(client, sampler, budget));
  }

  std::printf("LR-LBS-AGG COUNT(*) under the paper's §5.3 interface "
              "constraints, budget %llu queries each:\n\n",
              static_cast<unsigned long long>(budget));
  table.Print();
  return 0;
}
