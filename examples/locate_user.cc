// Tuple position computation over a rank-only interface (§4.3): pinpointing
// a "user" of an LNR service that never returns coordinates, from nothing
// but ranked ids — and how location obfuscation (WeChat-style) degrades it.

#include <cstdio>

#include "core/localize.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/stats.h"
#include "workload/scenarios.h"

namespace {

void RunDemo(const char* label, double obfuscation_radius) {
  using namespace lbsagg;
  ChinaOptions options;
  options.num_users = 4000;
  options.seed = 31;
  const ChinaScenario china = BuildChinaScenario(options);

  ServerOptions sopts;
  sopts.max_k = 1;
  sopts.obfuscation_radius = obfuscation_radius;
  LbsServer server(china.dataset.get(), sopts);
  LnrClient client(&server, {.k = 1});
  Localizer localizer(&client);

  Rng rng(7);
  std::vector<double> errors;
  int attempts = 0;
  while (errors.size() < 20 && attempts < 200) {
    ++attempts;
    const Vec2 q = china.dataset->box().SamplePoint(rng);
    const int id = client.Top1(q);
    if (id < 0) continue;
    const uint64_t before = client.queries_used();
    const std::optional<Vec2> pos = localizer.Locate(id, q);
    const uint64_t cost = client.queries_used() - before;
    if (!pos.has_value()) continue;
    const double err = Distance(*pos, china.dataset->tuple(id).pos);
    errors.push_back(err);
    if (errors.size() <= 5) {
      std::printf("  user %-5d located %8.4f km from true position "
                  "(%llu queries)\n",
                  id, err, static_cast<unsigned long long>(cost));
    }
  }
  const Summary s = Summarize(errors);
  std::printf("%s: located %zu users — median error %.4f km, p95 %.4f km\n\n",
              label, s.count, s.median, s.p95);
}

}  // namespace

int main() {
  std::printf("Localizing users of a rank-only (LNR) service via inferred "
              "Voronoi cells + reflection geometry (§4.3):\n\n");
  RunDemo("No obfuscation", 0.0);
  RunDemo("Obfuscated service (r = 0.5 km)", 0.5);
  return 0;
}
