// Estimation-as-a-service (DESIGN.md §4.12): one EstimationService hosting
// a mixed fleet of sessions from three tenants against a rate-limited
// simulated backend. Shows the whole service surface in one sitting:
//
//   * fair-share admission — tenant "free" queues ten sessions, tenants
//     "pro" and "team" one each; the principal ring interleaves them, so
//     nobody starves behind the burst;
//   * cross-session dedup — the free tier's sessions replay two distinct
//     query streams, so the backend answers each stream once while every
//     session is charged (and estimates) exactly as if it ran alone;
//   * lifecycle events — a trigger tallies per-tenant completions as they
//     happen;
//   * the observability plane:
//       --trace=out.json   Chrome trace_event JSON on the transport's
//                          virtual clock: one "service.session" span per
//                          session over the engine/client/transport spans.
//                          Open in Perfetto (ui.perfetto.dev).
//       --report=out.json  the merged RunReport with the service's
//                          diagnostics as a "service" section. Validated by
//                          tools/validate_report.py.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/runner.h"
#include "lbs/server.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "service/service.h"
#include "transport/simulated_transport.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace {

bool WriteFileOrComplain(const std::string& path, const std::string& body,
                         const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  out << body << "\n";
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsagg;

  FlagParser flags;
  flags.AddString("trace", "",
                  "write the run's Chrome trace_event JSON here");
  flags.AddString("report", "", "write the merged RunReport JSON here");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 1;
  }
  const std::string trace_path = flags.GetString("trace");
  const std::string report_path = flags.GetString("report");

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();

  UsaOptions uopts;
  uopts.num_pois = 4000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  const double truth = static_cast<double>(usa.dataset->size());

  // The backend wire: 8 ms per query behind a token bucket — the service
  // quota every tenant shares. Virtual time; nothing sleeps.
  SimulatedTransportOptions topts;
  topts.latency.fixed_ms = 8.0;
  topts.rate_limit = {.capacity = 16.0, .refill_per_sec = 100.0};
  topts.registry = &registry;
  SimulatedTransport wire(&server, topts);

  // All spans share the wire's virtual clock, so session/engine/transport
  // timelines line up in Perfetto.
  obs::FunctionTraceClock virtual_clock(
      [&wire] { return wire.VirtualNowMs() * 1000.0; });
  obs::Tracer tracer(&virtual_clock);
  obs::Tracer* trace_sink = trace_path.empty() ? nullptr : &tracer;

  service::ServiceOptions options;
  options.admission.policy = service::AdmissionPolicy::kFairShare;
  options.admission.max_active = 4;
  options.slice_rounds = 4;
  options.dispatcher_workers = 4;
  options.clock_ms = [&wire] { return wire.VirtualNowMs(); };
  options.registry = &registry;
  options.tracer = trace_sink;
  service::EstimationService svc({{.meta = &server, .wire = &wire}}, options);

  // Per-tenant completion tally, fed by the event registry as sessions end.
  std::map<std::string, int> tenant_done;
  svc.triggers().Add(service::SessionEventKind::kFinished,
                     [&](const service::SessionEvent& e) {
                       ++tenant_done[e.principal];
                     });

  // The free tier bursts ten COUNT(*) sessions replaying two distinct
  // seeds; the paying tenants submit one session each.
  std::vector<service::SessionId> ids;
  for (int i = 0; i < 10; ++i) {
    service::SessionSpec spec;
    spec.principal = "free";
    spec.family = service::EstimatorFamily::kNno;
    spec.budget = 60;
    spec.seed = 100 + i % 2;
    ids.push_back(svc.Submit(spec));
  }
  for (const char* tenant : {"pro", "team"}) {
    service::SessionSpec spec;
    spec.principal = tenant;
    spec.family = service::EstimatorFamily::kNno;
    spec.budget = 120;
    spec.seed = 7;
    ids.push_back(svc.Submit(spec));
  }

  svc.RunUntilIdle();

  Table table({"session", "tenant", "state", "COUNT(*)", "queries",
               "dedup hits", "latency (virtual ms)"});
  for (size_t i = 0; i < ids.size(); ++i) {
    const service::SessionStatus done = svc.Poll(ids[i]);
    table.AddRow({Table::Int(static_cast<int>(i) + 1), done.principal,
                  service::SessionStateName(done.state),
                  done.results.empty()
                      ? "-"
                      : Table::Num(done.results[0].final_estimate, 0),
                  Table::Int(static_cast<long long>(done.queries_used)),
                  Table::Int(static_cast<long long>(done.dedup_hits)),
                  Table::Num(done.latency_ms, 0)});
  }

  std::printf("12 sessions, 3 tenants, fair-share admission over one "
              "rate-limited backend\n(truth: %.0f tuples):\n\n",
              truth);
  table.Print();

  std::printf("\nper-tenant completions:");
  for (const auto& [tenant, n] : tenant_done) {
    std::printf("  %s=%d", tenant.c_str(), n);
  }
  const service::DedupStats dedup = svc.dedup()->Stats();
  std::printf("\ndedup: %llu of %llu interface queries answered from the "
              "shared cache\n",
              static_cast<unsigned long long>(dedup.saved_attempts),
              static_cast<unsigned long long>(dedup.lookups));
  std::printf("simulated %.1f s of service time\n\n",
              svc.NowMs() / 1000.0);
  std::printf("service diagnostics:\n%s\n", svc.diagnostics_json().c_str());

  // One representative session's RunResult anchors the report; the service
  // section carries the fleet view.
  const service::SessionStatus first = svc.Poll(ids[0]);
  obs::RunReport report =
      BuildRunReport("service.nno", first.results[0], &registry);
  report.SetMeta("example", "service_load");
  report.SetMetaNum("sessions", static_cast<double>(ids.size()));
  report.SetMetaNum("virtual_time_ms", svc.NowMs());
  report.AddJsonSection("service", svc.diagnostics_json());

  int exit_code = 0;
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, tracer.ToChromeTraceJson(), "trace"))
      exit_code = 1;
  }
  if (!report_path.empty()) {
    if (!WriteFileOrComplain(report_path, report.ToJson(), "run report"))
      exit_code = 1;
  }
  return exit_code;
}
