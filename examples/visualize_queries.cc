// Renders where LR-LBS-AGG actually spends its queries: the hidden tuples,
// their Voronoi cells (simulator-side knowledge, drawn for context), and
// every query location the estimator issued — random sample locations plus
// the Theorem-1 vertex probes that pin each sampled cell down.
//
// Output: lbsagg_queries.svg in the current directory.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/sampler.h"
#include "geometry/voronoi_diagram.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/svg.h"
#include "workload/scenarios.h"

int main() {
  using namespace lbsagg;

  UsaOptions options;
  options.num_pois = 250;
  options.num_cities = 8;
  const UsaScenario usa = BuildUsaScenario(options);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  client.EnableQueryLog();
  CensusSampler sampler(&usa.census);

  LrAggEstimator estimator(&client, &sampler, AggregateSpec::Count(), {});
  for (int i = 0; i < 12; ++i) estimator.Step();

  SvgCanvas canvas(usa.dataset->box(), 1400.0);
  // Context: the true decomposition (what the estimator is discovering).
  const VoronoiDiagram diagram =
      VoronoiDiagram::Build(usa.dataset->Positions(), usa.dataset->box());
  for (size_t i = 0; i < diagram.size(); ++i) {
    canvas.AddPolygon(diagram.Cell(static_cast<int>(i)), "none", "#c0c0c0",
                      0.6);
  }
  for (const Tuple& t : usa.dataset->tuples()) {
    canvas.AddPoint(t.pos, 2.0, "#305080");
  }
  // The estimator's footprint.
  for (const Vec2& q : client.query_log()) {
    canvas.AddPoint(q, 1.6, "#d03020");
  }
  canvas.AddText({usa.dataset->box().lo.x + 30, usa.dataset->box().hi.y - 60},
                 "blue: hidden tuples / grey: true Voronoi cells / red: "
                 "queries issued by LR-LBS-AGG (12 samples)",
                 22.0);

  const char* path = "lbsagg_queries.svg";
  if (canvas.WriteFile(path)) {
    std::printf("Estimator issued %llu queries over 12 samples; rendered to "
                "%s\n",
                static_cast<unsigned long long>(client.queries_used()), path);
    std::printf("Note the clusters of red probes around each sampled tuple: "
                "the Theorem-1 loop querying cell vertices.\n");
  }
  return 0;
}
