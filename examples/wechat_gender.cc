// The paper's WeChat/Weibo demonstration (Table 1): estimating the number of
// users and their gender ratio over LNR services that return only ranked
// ids — no locations — using Algorithm LNR-LBS-AGG.

#include <cstdio>

#include "core/aggregate.h"
#include "core/lnr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/table.h"
#include "workload/scenarios.h"

namespace {

struct ServiceResult {
  double users = 0.0;
  double male_share = 0.0;
  double ratio_num = 0.0;
  double ratio_den = 0.0;
  uint64_t queries = 0;
};

ServiceResult EstimateService(const lbsagg::ChinaScenario& scenario,
                              int k, uint64_t budget, uint64_t seed) {
  using namespace lbsagg;
  LbsServer server(scenario.dataset.get(), {.max_k = k});
  CensusSampler sampler(&scenario.census);

  // Aggregate-grade precision: edges a few meters off barely move a cell's
  // area, while localization-grade δ would burn the budget on one sample
  // (Theorem 2 bias shrinks only logarithmically anyway).
  LnrAggOptions opts;
  opts.seed = seed;
  opts.cell.search.delta_fraction = 1e-6;
  opts.cell.search.delta_prime_fraction = 1e-4;

  LnrClient count_client(&server, {.k = k, .budget = budget / 2});
  LnrAggEstimator count_est(&count_client, &sampler, AggregateSpec::Count(),
                            opts);
  const RunResult count_run =
      RunWithBudget(MakeHandle(&count_est), count_client.budget());

  // The gender share is a ratio: AVG(male_indicator) shares samples between
  // numerator and denominator and converges far faster than the quotient of
  // two independent COUNTs.
  LnrClient ratio_client(&server, {.k = k, .budget = budget / 2});
  LnrAggEstimator ratio_est(
      &ratio_client, &sampler,
      AggregateSpec::Avg(scenario.columns.male_indicator, "AVG(male)"), opts);
  RunWithBudget(MakeHandle(&ratio_est), ratio_client.budget());

  ServiceResult r;
  r.users = count_run.final_estimate;
  r.male_share = ratio_est.NumeratorMean();   // pooled by the caller
  r.queries = count_run.queries + ratio_client.queries_used();
  // Stash the denominator in male_share's pair: see EstimateAveraged.
  r.ratio_num = ratio_est.NumeratorMean();
  r.ratio_den = ratio_est.DenominatorMean();
  return r;
}

// The paper reports each data point as the average of 25 runs (§6.1); this
// demo averages a few to keep the runtime interactive.
ServiceResult EstimateAveraged(const lbsagg::ChinaScenario& scenario, int k,
                               uint64_t budget_per_run, int runs) {
  ServiceResult total;
  for (int r = 0; r < runs; ++r) {
    const ServiceResult one =
        EstimateService(scenario, k, budget_per_run, 1000 + r);
    total.users += one.users / runs;
    total.ratio_num += one.ratio_num;
    total.ratio_den += one.ratio_den;
    total.queries += one.queries;
  }
  // Combined (pooled) ratio: less small-sample bias than averaging ratios.
  total.male_share =
      total.ratio_den > 0 ? total.ratio_num / total.ratio_den : 0.0;
  return total;
}

}  // namespace

int main() {
  using namespace lbsagg;

  // WeChat-like: 67.1% male users, k = 50 interface.
  ChinaOptions wechat;
  wechat.num_users = 15000;
  wechat.male_fraction = 0.671;
  wechat.seed = 101;
  const ChinaScenario wechat_scenario = BuildChinaScenario(wechat);

  // Weibo-like: 50.4% male users, k = 100 interface.
  ChinaOptions weibo;
  weibo.num_users = 12000;
  weibo.male_fraction = 0.504;
  weibo.seed = 202;
  const ChinaScenario weibo_scenario = BuildChinaScenario(weibo);

  Table table({"service", "users (est)", "users (truth)", "M:F (est)",
               "M:F (truth)", "queries"});

  const ServiceResult wc = EstimateAveraged(wechat_scenario, 10, 20000, 10);
  table.AddRow({"WeChat-like", Table::Num(wc.users, 0),
                Table::Num(wechat_scenario.dataset->GroundTruthCount(), 0),
                Table::Num(100 * wc.male_share, 1) + ":" +
                    Table::Num(100 * (1 - wc.male_share), 1),
                "67.1:32.9",
                Table::Int(static_cast<long long>(wc.queries))});

  const ServiceResult wb = EstimateAveraged(weibo_scenario, 10, 20000, 10);
  table.AddRow({"Weibo-like", Table::Num(wb.users, 0),
                Table::Num(weibo_scenario.dataset->GroundTruthCount(), 0),
                Table::Num(100 * wb.male_share, 1) + ":" +
                    Table::Num(100 * (1 - wb.male_share), 1),
                "50.4:49.6",
                Table::Int(static_cast<long long>(wb.queries))});

  std::printf("LNR-LBS-AGG over rank-only social services (no locations "
              "returned), 10 runs x 20000 queries per service:\n\n");
  table.Print();
  std::printf("\nNote: inverse-probability weights over clustered users are "
              "heavy-tailed, so per-run\nspread is large; the paper's Table 1 "
              "averages 25 runs of 10000 queries on the real services.\n");
  return 0;
}
