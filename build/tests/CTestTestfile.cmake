# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/topk_region_test[1]_include.cmake")
include("/root/repo/build/tests/delaunay_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/lbs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/lr_cell_test[1]_include.cmake")
include("/root/repo/build/tests/lr_agg_test[1]_include.cmake")
include("/root/repo/build/tests/nno_test[1]_include.cmake")
include("/root/repo/build/tests/binary_search_test[1]_include.cmake")
include("/root/repo/build/tests/lnr_cell_test[1]_include.cmake")
include("/root/repo/build/tests/lnr_agg_test[1]_include.cmake")
include("/root/repo/build/tests/localize_test[1]_include.cmake")
include("/root/repo/build/tests/ground_truth_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/lr3_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/fortune_test[1]_include.cmake")
