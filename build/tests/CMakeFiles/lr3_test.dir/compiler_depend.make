# Empty compiler generated dependencies file for lr3_test.
# This may be replaced when dependencies are built.
