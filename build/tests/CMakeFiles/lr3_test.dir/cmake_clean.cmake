file(REMOVE_RECURSE
  "CMakeFiles/lr3_test.dir/lr3_test.cc.o"
  "CMakeFiles/lr3_test.dir/lr3_test.cc.o.d"
  "lr3_test"
  "lr3_test.pdb"
  "lr3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
