file(REMOVE_RECURSE
  "CMakeFiles/fortune_test.dir/fortune_test.cc.o"
  "CMakeFiles/fortune_test.dir/fortune_test.cc.o.d"
  "fortune_test"
  "fortune_test.pdb"
  "fortune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
