# Empty compiler generated dependencies file for fortune_test.
# This may be replaced when dependencies are built.
