# Empty dependencies file for topk_region_test.
# This may be replaced when dependencies are built.
