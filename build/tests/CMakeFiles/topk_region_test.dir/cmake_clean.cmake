file(REMOVE_RECURSE
  "CMakeFiles/topk_region_test.dir/topk_region_test.cc.o"
  "CMakeFiles/topk_region_test.dir/topk_region_test.cc.o.d"
  "topk_region_test"
  "topk_region_test.pdb"
  "topk_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
