# Empty compiler generated dependencies file for lnr_agg_test.
# This may be replaced when dependencies are built.
