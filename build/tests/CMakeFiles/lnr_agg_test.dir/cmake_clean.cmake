file(REMOVE_RECURSE
  "CMakeFiles/lnr_agg_test.dir/lnr_agg_test.cc.o"
  "CMakeFiles/lnr_agg_test.dir/lnr_agg_test.cc.o.d"
  "lnr_agg_test"
  "lnr_agg_test.pdb"
  "lnr_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnr_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
