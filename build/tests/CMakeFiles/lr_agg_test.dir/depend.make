# Empty dependencies file for lr_agg_test.
# This may be replaced when dependencies are built.
