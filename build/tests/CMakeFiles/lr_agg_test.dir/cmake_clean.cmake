file(REMOVE_RECURSE
  "CMakeFiles/lr_agg_test.dir/lr_agg_test.cc.o"
  "CMakeFiles/lr_agg_test.dir/lr_agg_test.cc.o.d"
  "lr_agg_test"
  "lr_agg_test.pdb"
  "lr_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
