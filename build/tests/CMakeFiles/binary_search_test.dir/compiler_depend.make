# Empty compiler generated dependencies file for binary_search_test.
# This may be replaced when dependencies are built.
