file(REMOVE_RECURSE
  "CMakeFiles/binary_search_test.dir/binary_search_test.cc.o"
  "CMakeFiles/binary_search_test.dir/binary_search_test.cc.o.d"
  "binary_search_test"
  "binary_search_test.pdb"
  "binary_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
