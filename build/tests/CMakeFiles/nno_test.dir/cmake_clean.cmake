file(REMOVE_RECURSE
  "CMakeFiles/nno_test.dir/nno_test.cc.o"
  "CMakeFiles/nno_test.dir/nno_test.cc.o.d"
  "nno_test"
  "nno_test.pdb"
  "nno_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
