# Empty dependencies file for nno_test.
# This may be replaced when dependencies are built.
