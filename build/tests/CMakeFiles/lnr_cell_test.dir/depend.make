# Empty dependencies file for lnr_cell_test.
# This may be replaced when dependencies are built.
