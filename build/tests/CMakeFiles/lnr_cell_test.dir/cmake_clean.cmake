file(REMOVE_RECURSE
  "CMakeFiles/lnr_cell_test.dir/lnr_cell_test.cc.o"
  "CMakeFiles/lnr_cell_test.dir/lnr_cell_test.cc.o.d"
  "lnr_cell_test"
  "lnr_cell_test.pdb"
  "lnr_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnr_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
