file(REMOVE_RECURSE
  "CMakeFiles/lr_cell_test.dir/lr_cell_test.cc.o"
  "CMakeFiles/lr_cell_test.dir/lr_cell_test.cc.o.d"
  "lr_cell_test"
  "lr_cell_test.pdb"
  "lr_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
