# Empty compiler generated dependencies file for lr_cell_test.
# This may be replaced when dependencies are built.
