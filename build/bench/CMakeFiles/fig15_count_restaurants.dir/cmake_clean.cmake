file(REMOVE_RECURSE
  "CMakeFiles/fig15_count_restaurants.dir/fig15_count_restaurants.cc.o"
  "CMakeFiles/fig15_count_restaurants.dir/fig15_count_restaurants.cc.o.d"
  "fig15_count_restaurants"
  "fig15_count_restaurants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_count_restaurants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
