# Empty dependencies file for fig15_count_restaurants.
# This may be replaced when dependencies are built.
