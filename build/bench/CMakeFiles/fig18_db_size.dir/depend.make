# Empty dependencies file for fig18_db_size.
# This may be replaced when dependencies are built.
