file(REMOVE_RECURSE
  "CMakeFiles/fig18_db_size.dir/fig18_db_size.cc.o"
  "CMakeFiles/fig18_db_size.dir/fig18_db_size.cc.o.d"
  "fig18_db_size"
  "fig18_db_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_db_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
