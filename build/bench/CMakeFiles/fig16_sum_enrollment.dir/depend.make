# Empty dependencies file for fig16_sum_enrollment.
# This may be replaced when dependencies are built.
