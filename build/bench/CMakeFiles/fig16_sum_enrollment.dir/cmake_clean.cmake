file(REMOVE_RECURSE
  "CMakeFiles/fig16_sum_enrollment.dir/fig16_sum_enrollment.cc.o"
  "CMakeFiles/fig16_sum_enrollment.dir/fig16_sum_enrollment.cc.o.d"
  "fig16_sum_enrollment"
  "fig16_sum_enrollment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sum_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
