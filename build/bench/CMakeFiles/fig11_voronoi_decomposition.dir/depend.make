# Empty dependencies file for fig11_voronoi_decomposition.
# This may be replaced when dependencies are built.
