file(REMOVE_RECURSE
  "CMakeFiles/fig11_voronoi_decomposition.dir/fig11_voronoi_decomposition.cc.o"
  "CMakeFiles/fig11_voronoi_decomposition.dir/fig11_voronoi_decomposition.cc.o.d"
  "fig11_voronoi_decomposition"
  "fig11_voronoi_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_voronoi_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
