# Empty dependencies file for fig19_vary_k.
# This may be replaced when dependencies are built.
