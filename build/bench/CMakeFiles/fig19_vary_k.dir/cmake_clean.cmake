file(REMOVE_RECURSE
  "CMakeFiles/fig19_vary_k.dir/fig19_vary_k.cc.o"
  "CMakeFiles/fig19_vary_k.dir/fig19_vary_k.cc.o.d"
  "fig19_vary_k"
  "fig19_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
