# Empty dependencies file for fig12_unbiasedness.
# This may be replaced when dependencies are built.
