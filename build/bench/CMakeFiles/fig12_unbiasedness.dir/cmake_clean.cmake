file(REMOVE_RECURSE
  "CMakeFiles/fig12_unbiasedness.dir/fig12_unbiasedness.cc.o"
  "CMakeFiles/fig12_unbiasedness.dir/fig12_unbiasedness.cc.o.d"
  "fig12_unbiasedness"
  "fig12_unbiasedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_unbiasedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
