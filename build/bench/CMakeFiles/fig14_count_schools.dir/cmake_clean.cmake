file(REMOVE_RECURSE
  "CMakeFiles/fig14_count_schools.dir/fig14_count_schools.cc.o"
  "CMakeFiles/fig14_count_schools.dir/fig14_count_schools.cc.o.d"
  "fig14_count_schools"
  "fig14_count_schools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_count_schools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
