# Empty compiler generated dependencies file for fig14_count_schools.
# This may be replaced when dependencies are built.
