# Empty compiler generated dependencies file for table1_online.
# This may be replaced when dependencies are built.
