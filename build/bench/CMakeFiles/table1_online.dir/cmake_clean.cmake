file(REMOVE_RECURSE
  "CMakeFiles/table1_online.dir/table1_online.cc.o"
  "CMakeFiles/table1_online.dir/table1_online.cc.o.d"
  "table1_online"
  "table1_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
