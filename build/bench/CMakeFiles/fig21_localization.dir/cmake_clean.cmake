file(REMOVE_RECURSE
  "CMakeFiles/fig21_localization.dir/fig21_localization.cc.o"
  "CMakeFiles/fig21_localization.dir/fig21_localization.cc.o.d"
  "fig21_localization"
  "fig21_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
