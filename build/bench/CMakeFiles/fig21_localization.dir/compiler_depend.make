# Empty compiler generated dependencies file for fig21_localization.
# This may be replaced when dependencies are built.
