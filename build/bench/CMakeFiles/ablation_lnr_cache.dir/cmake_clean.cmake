file(REMOVE_RECURSE
  "CMakeFiles/ablation_lnr_cache.dir/ablation_lnr_cache.cc.o"
  "CMakeFiles/ablation_lnr_cache.dir/ablation_lnr_cache.cc.o.d"
  "ablation_lnr_cache"
  "ablation_lnr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lnr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
