# Empty compiler generated dependencies file for ablation_lnr_cache.
# This may be replaced when dependencies are built.
