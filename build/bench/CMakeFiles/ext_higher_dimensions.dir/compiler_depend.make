# Empty compiler generated dependencies file for ext_higher_dimensions.
# This may be replaced when dependencies are built.
