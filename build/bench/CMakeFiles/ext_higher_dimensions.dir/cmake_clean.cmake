file(REMOVE_RECURSE
  "CMakeFiles/ext_higher_dimensions.dir/ext_higher_dimensions.cc.o"
  "CMakeFiles/ext_higher_dimensions.dir/ext_higher_dimensions.cc.o.d"
  "ext_higher_dimensions"
  "ext_higher_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_higher_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
