# Empty dependencies file for ablation_lnr_precision.
# This may be replaced when dependencies are built.
