file(REMOVE_RECURSE
  "CMakeFiles/ablation_lnr_precision.dir/ablation_lnr_precision.cc.o"
  "CMakeFiles/ablation_lnr_precision.dir/ablation_lnr_precision.cc.o.d"
  "ablation_lnr_precision"
  "ablation_lnr_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lnr_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
