
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_lnr_precision.cc" "bench/CMakeFiles/ablation_lnr_precision.dir/ablation_lnr_precision.cc.o" "gcc" "bench/CMakeFiles/ablation_lnr_precision.dir/ablation_lnr_precision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_lbs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_lbs3.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry3d.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
