file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixture_sampler.dir/ablation_mixture_sampler.cc.o"
  "CMakeFiles/ablation_mixture_sampler.dir/ablation_mixture_sampler.cc.o.d"
  "ablation_mixture_sampler"
  "ablation_mixture_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixture_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
