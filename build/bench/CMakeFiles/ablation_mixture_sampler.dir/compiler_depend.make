# Empty compiler generated dependencies file for ablation_mixture_sampler.
# This may be replaced when dependencies are built.
