# Empty dependencies file for fig13_sampling_strategy.
# This may be replaced when dependencies are built.
