file(REMOVE_RECURSE
  "CMakeFiles/fig13_sampling_strategy.dir/fig13_sampling_strategy.cc.o"
  "CMakeFiles/fig13_sampling_strategy.dir/fig13_sampling_strategy.cc.o.d"
  "fig13_sampling_strategy"
  "fig13_sampling_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sampling_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
