file(REMOVE_RECURSE
  "CMakeFiles/fig17_avg_ratings.dir/fig17_avg_ratings.cc.o"
  "CMakeFiles/fig17_avg_ratings.dir/fig17_avg_ratings.cc.o.d"
  "fig17_avg_ratings"
  "fig17_avg_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_avg_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
