# Empty dependencies file for fig17_avg_ratings.
# This may be replaced when dependencies are built.
