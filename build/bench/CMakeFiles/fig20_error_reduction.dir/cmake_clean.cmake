file(REMOVE_RECURSE
  "CMakeFiles/fig20_error_reduction.dir/fig20_error_reduction.cc.o"
  "CMakeFiles/fig20_error_reduction.dir/fig20_error_reduction.cc.o.d"
  "fig20_error_reduction"
  "fig20_error_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_error_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
