# Empty dependencies file for fig20_error_reduction.
# This may be replaced when dependencies are built.
