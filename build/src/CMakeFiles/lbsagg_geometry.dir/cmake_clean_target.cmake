file(REMOVE_RECURSE
  "liblbsagg_geometry.a"
)
