# Empty compiler generated dependencies file for lbsagg_geometry.
# This may be replaced when dependencies are built.
