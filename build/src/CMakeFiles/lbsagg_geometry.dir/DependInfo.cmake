
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/delaunay.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/delaunay.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/delaunay.cc.o.d"
  "/root/repo/src/geometry/fortune.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/fortune.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/fortune.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/polygon.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/polygon.cc.o.d"
  "/root/repo/src/geometry/predicates.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/predicates.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/predicates.cc.o.d"
  "/root/repo/src/geometry/topk_region.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/topk_region.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/topk_region.cc.o.d"
  "/root/repo/src/geometry/voronoi_diagram.cc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/voronoi_diagram.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/geometry/voronoi_diagram.cc.o.d"
  "/root/repo/src/util/svg.cc" "src/CMakeFiles/lbsagg_geometry.dir/util/svg.cc.o" "gcc" "src/CMakeFiles/lbsagg_geometry.dir/util/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
