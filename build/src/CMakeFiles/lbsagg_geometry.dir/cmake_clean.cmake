file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_geometry.dir/geometry/delaunay.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/delaunay.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/geometry/fortune.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/fortune.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/geometry/polygon.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/polygon.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/geometry/predicates.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/predicates.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/geometry/topk_region.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/topk_region.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/geometry/voronoi_diagram.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/geometry/voronoi_diagram.cc.o.d"
  "CMakeFiles/lbsagg_geometry.dir/util/svg.cc.o"
  "CMakeFiles/lbsagg_geometry.dir/util/svg.cc.o.d"
  "liblbsagg_geometry.a"
  "liblbsagg_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
