file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_util.dir/util/check.cc.o"
  "CMakeFiles/lbsagg_util.dir/util/check.cc.o.d"
  "CMakeFiles/lbsagg_util.dir/util/flags.cc.o"
  "CMakeFiles/lbsagg_util.dir/util/flags.cc.o.d"
  "CMakeFiles/lbsagg_util.dir/util/rng.cc.o"
  "CMakeFiles/lbsagg_util.dir/util/rng.cc.o.d"
  "CMakeFiles/lbsagg_util.dir/util/stats.cc.o"
  "CMakeFiles/lbsagg_util.dir/util/stats.cc.o.d"
  "CMakeFiles/lbsagg_util.dir/util/table.cc.o"
  "CMakeFiles/lbsagg_util.dir/util/table.cc.o.d"
  "liblbsagg_util.a"
  "liblbsagg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
