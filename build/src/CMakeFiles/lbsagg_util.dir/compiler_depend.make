# Empty compiler generated dependencies file for lbsagg_util.
# This may be replaced when dependencies are built.
