file(REMOVE_RECURSE
  "liblbsagg_util.a"
)
