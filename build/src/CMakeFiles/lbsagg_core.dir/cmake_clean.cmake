file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_core.dir/core/aggregate.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/aggregate.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/binary_search.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/binary_search.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/ground_truth.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/ground_truth.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/history.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/history.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/lnr_agg.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/lnr_agg.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/lnr_cell.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/lnr_cell.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/localize.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/localize.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/lr3_agg.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/lr3_agg.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/lr_agg.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/lr_agg.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/lr_cell.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/lr_cell.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/mixture_sampler.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/mixture_sampler.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/nno_baseline.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/nno_baseline.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/runner.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/runner.cc.o.d"
  "CMakeFiles/lbsagg_core.dir/core/sampler.cc.o"
  "CMakeFiles/lbsagg_core.dir/core/sampler.cc.o.d"
  "liblbsagg_core.a"
  "liblbsagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
