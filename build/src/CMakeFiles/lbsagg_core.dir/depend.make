# Empty dependencies file for lbsagg_core.
# This may be replaced when dependencies are built.
