file(REMOVE_RECURSE
  "liblbsagg_core.a"
)
