
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/lbsagg_core.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/binary_search.cc" "src/CMakeFiles/lbsagg_core.dir/core/binary_search.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/binary_search.cc.o.d"
  "/root/repo/src/core/ground_truth.cc" "src/CMakeFiles/lbsagg_core.dir/core/ground_truth.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/ground_truth.cc.o.d"
  "/root/repo/src/core/history.cc" "src/CMakeFiles/lbsagg_core.dir/core/history.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/history.cc.o.d"
  "/root/repo/src/core/lnr_agg.cc" "src/CMakeFiles/lbsagg_core.dir/core/lnr_agg.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/lnr_agg.cc.o.d"
  "/root/repo/src/core/lnr_cell.cc" "src/CMakeFiles/lbsagg_core.dir/core/lnr_cell.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/lnr_cell.cc.o.d"
  "/root/repo/src/core/localize.cc" "src/CMakeFiles/lbsagg_core.dir/core/localize.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/localize.cc.o.d"
  "/root/repo/src/core/lr3_agg.cc" "src/CMakeFiles/lbsagg_core.dir/core/lr3_agg.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/lr3_agg.cc.o.d"
  "/root/repo/src/core/lr_agg.cc" "src/CMakeFiles/lbsagg_core.dir/core/lr_agg.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/lr_agg.cc.o.d"
  "/root/repo/src/core/lr_cell.cc" "src/CMakeFiles/lbsagg_core.dir/core/lr_cell.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/lr_cell.cc.o.d"
  "/root/repo/src/core/mixture_sampler.cc" "src/CMakeFiles/lbsagg_core.dir/core/mixture_sampler.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/mixture_sampler.cc.o.d"
  "/root/repo/src/core/nno_baseline.cc" "src/CMakeFiles/lbsagg_core.dir/core/nno_baseline.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/nno_baseline.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/lbsagg_core.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/runner.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/CMakeFiles/lbsagg_core.dir/core/sampler.cc.o" "gcc" "src/CMakeFiles/lbsagg_core.dir/core/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsagg_lbs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_lbs3.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry3d.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
