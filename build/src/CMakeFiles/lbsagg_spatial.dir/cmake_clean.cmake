file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_spatial.dir/spatial/brute_force.cc.o"
  "CMakeFiles/lbsagg_spatial.dir/spatial/brute_force.cc.o.d"
  "CMakeFiles/lbsagg_spatial.dir/spatial/grid_index.cc.o"
  "CMakeFiles/lbsagg_spatial.dir/spatial/grid_index.cc.o.d"
  "CMakeFiles/lbsagg_spatial.dir/spatial/kdtree.cc.o"
  "CMakeFiles/lbsagg_spatial.dir/spatial/kdtree.cc.o.d"
  "liblbsagg_spatial.a"
  "liblbsagg_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
