
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/brute_force.cc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/brute_force.cc.o" "gcc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/brute_force.cc.o.d"
  "/root/repo/src/spatial/grid_index.cc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/grid_index.cc.o" "gcc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/grid_index.cc.o.d"
  "/root/repo/src/spatial/kdtree.cc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/kdtree.cc.o" "gcc" "src/CMakeFiles/lbsagg_spatial.dir/spatial/kdtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
