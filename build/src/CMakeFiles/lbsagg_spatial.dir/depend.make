# Empty dependencies file for lbsagg_spatial.
# This may be replaced when dependencies are built.
