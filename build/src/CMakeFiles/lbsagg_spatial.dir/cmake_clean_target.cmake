file(REMOVE_RECURSE
  "liblbsagg_spatial.a"
)
