
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/attribute_models.cc" "src/CMakeFiles/lbsagg_workload.dir/workload/attribute_models.cc.o" "gcc" "src/CMakeFiles/lbsagg_workload.dir/workload/attribute_models.cc.o.d"
  "/root/repo/src/workload/census.cc" "src/CMakeFiles/lbsagg_workload.dir/workload/census.cc.o" "gcc" "src/CMakeFiles/lbsagg_workload.dir/workload/census.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/lbsagg_workload.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/lbsagg_workload.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/scenarios.cc" "src/CMakeFiles/lbsagg_workload.dir/workload/scenarios.cc.o" "gcc" "src/CMakeFiles/lbsagg_workload.dir/workload/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsagg_lbs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
