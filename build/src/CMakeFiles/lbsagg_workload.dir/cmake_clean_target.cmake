file(REMOVE_RECURSE
  "liblbsagg_workload.a"
)
