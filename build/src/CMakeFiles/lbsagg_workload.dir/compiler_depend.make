# Empty compiler generated dependencies file for lbsagg_workload.
# This may be replaced when dependencies are built.
