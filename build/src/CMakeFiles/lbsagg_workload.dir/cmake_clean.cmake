file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_workload.dir/workload/attribute_models.cc.o"
  "CMakeFiles/lbsagg_workload.dir/workload/attribute_models.cc.o.d"
  "CMakeFiles/lbsagg_workload.dir/workload/census.cc.o"
  "CMakeFiles/lbsagg_workload.dir/workload/census.cc.o.d"
  "CMakeFiles/lbsagg_workload.dir/workload/generators.cc.o"
  "CMakeFiles/lbsagg_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/lbsagg_workload.dir/workload/scenarios.cc.o"
  "CMakeFiles/lbsagg_workload.dir/workload/scenarios.cc.o.d"
  "liblbsagg_workload.a"
  "liblbsagg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
