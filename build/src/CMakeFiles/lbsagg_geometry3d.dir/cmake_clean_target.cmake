file(REMOVE_RECURSE
  "liblbsagg_geometry3d.a"
)
