# Empty compiler generated dependencies file for lbsagg_geometry3d.
# This may be replaced when dependencies are built.
