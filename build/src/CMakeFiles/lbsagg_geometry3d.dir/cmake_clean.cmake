file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_geometry3d.dir/geometry3d/polytope3.cc.o"
  "CMakeFiles/lbsagg_geometry3d.dir/geometry3d/polytope3.cc.o.d"
  "liblbsagg_geometry3d.a"
  "liblbsagg_geometry3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_geometry3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
