file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_lbs.dir/lbs/attribute.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/attribute.cc.o.d"
  "CMakeFiles/lbsagg_lbs.dir/lbs/client.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/client.cc.o.d"
  "CMakeFiles/lbsagg_lbs.dir/lbs/dataset.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/dataset.cc.o.d"
  "CMakeFiles/lbsagg_lbs.dir/lbs/dataset_io.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/dataset_io.cc.o.d"
  "CMakeFiles/lbsagg_lbs.dir/lbs/server.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/server.cc.o.d"
  "CMakeFiles/lbsagg_lbs.dir/lbs/trilateration.cc.o"
  "CMakeFiles/lbsagg_lbs.dir/lbs/trilateration.cc.o.d"
  "liblbsagg_lbs.a"
  "liblbsagg_lbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_lbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
