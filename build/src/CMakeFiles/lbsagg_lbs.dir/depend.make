# Empty dependencies file for lbsagg_lbs.
# This may be replaced when dependencies are built.
