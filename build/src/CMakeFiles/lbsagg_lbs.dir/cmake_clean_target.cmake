file(REMOVE_RECURSE
  "liblbsagg_lbs.a"
)
