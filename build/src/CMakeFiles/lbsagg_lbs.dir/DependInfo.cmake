
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lbs/attribute.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/attribute.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/attribute.cc.o.d"
  "/root/repo/src/lbs/client.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/client.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/client.cc.o.d"
  "/root/repo/src/lbs/dataset.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/dataset.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/dataset.cc.o.d"
  "/root/repo/src/lbs/dataset_io.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/dataset_io.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/dataset_io.cc.o.d"
  "/root/repo/src/lbs/server.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/server.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/server.cc.o.d"
  "/root/repo/src/lbs/trilateration.cc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/trilateration.cc.o" "gcc" "src/CMakeFiles/lbsagg_lbs.dir/lbs/trilateration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lbsagg_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lbsagg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
