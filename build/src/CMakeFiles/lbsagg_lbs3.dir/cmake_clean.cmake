file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_lbs3.dir/lbs3/lbs3.cc.o"
  "CMakeFiles/lbsagg_lbs3.dir/lbs3/lbs3.cc.o.d"
  "liblbsagg_lbs3.a"
  "liblbsagg_lbs3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_lbs3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
