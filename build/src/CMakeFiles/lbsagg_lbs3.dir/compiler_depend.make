# Empty compiler generated dependencies file for lbsagg_lbs3.
# This may be replaced when dependencies are built.
