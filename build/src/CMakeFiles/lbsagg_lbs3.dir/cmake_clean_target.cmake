file(REMOVE_RECURSE
  "liblbsagg_lbs3.a"
)
