file(REMOVE_RECURSE
  "CMakeFiles/wechat_gender.dir/wechat_gender.cc.o"
  "CMakeFiles/wechat_gender.dir/wechat_gender.cc.o.d"
  "wechat_gender"
  "wechat_gender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wechat_gender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
