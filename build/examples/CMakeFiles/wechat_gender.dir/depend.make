# Empty dependencies file for wechat_gender.
# This may be replaced when dependencies are built.
