file(REMOVE_RECURSE
  "CMakeFiles/service_constraints.dir/service_constraints.cc.o"
  "CMakeFiles/service_constraints.dir/service_constraints.cc.o.d"
  "service_constraints"
  "service_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
