# Empty compiler generated dependencies file for service_constraints.
# This may be replaced when dependencies are built.
