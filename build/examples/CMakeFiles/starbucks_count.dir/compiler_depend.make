# Empty compiler generated dependencies file for starbucks_count.
# This may be replaced when dependencies are built.
