file(REMOVE_RECURSE
  "CMakeFiles/starbucks_count.dir/starbucks_count.cc.o"
  "CMakeFiles/starbucks_count.dir/starbucks_count.cc.o.d"
  "starbucks_count"
  "starbucks_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starbucks_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
