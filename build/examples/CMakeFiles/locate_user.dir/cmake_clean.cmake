file(REMOVE_RECURSE
  "CMakeFiles/locate_user.dir/locate_user.cc.o"
  "CMakeFiles/locate_user.dir/locate_user.cc.o.d"
  "locate_user"
  "locate_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locate_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
