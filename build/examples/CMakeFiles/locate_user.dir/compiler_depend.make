# Empty compiler generated dependencies file for locate_user.
# This may be replaced when dependencies are built.
