file(REMOVE_RECURSE
  "CMakeFiles/visualize_queries.dir/visualize_queries.cc.o"
  "CMakeFiles/visualize_queries.dir/visualize_queries.cc.o.d"
  "visualize_queries"
  "visualize_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
