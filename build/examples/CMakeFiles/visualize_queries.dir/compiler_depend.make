# Empty compiler generated dependencies file for visualize_queries.
# This may be replaced when dependencies are built.
