# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/lbsagg_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lr_count "/root/repo/build/tools/lbsagg_cli" "--dataset=usa" "--n=500" "--algorithm=lr" "--aggregate=count" "--budget=800" "--runs=1")
set_tests_properties(cli_lr_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export_roundtrip "/root/repo/build/tools/lbsagg_cli" "--dataset=usa" "--n=200" "--export=/root/repo/build/tools/cli_export.csv")
set_tests_properties(cli_export_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_localize "/root/repo/build/tools/lbsagg_cli" "--dataset=china" "--n=800" "--localize=2")
set_tests_properties(cli_localize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/lbsagg_cli" "--no-such-flag")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
