# Empty compiler generated dependencies file for lbsagg_cli.
# This may be replaced when dependencies are built.
