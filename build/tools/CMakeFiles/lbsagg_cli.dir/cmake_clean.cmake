file(REMOVE_RECURSE
  "CMakeFiles/lbsagg_cli.dir/lbsagg_cli.cc.o"
  "CMakeFiles/lbsagg_cli.dir/lbsagg_cli.cc.o.d"
  "lbsagg_cli"
  "lbsagg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbsagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
